package signature

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/calib"
	"dimmunix/internal/stack"
)

// History is the persistent set of deadlock and starvation signatures
// (§5.4: loaded from disk at startup, shared read-mostly among all
// threads; the monitor is the only mutator of the on-disk file).
//
// Locking discipline: History's own mutex protects the signature *set*
// (membership, lookup, the Disabled/Rev state machine, tombstones). The
// mutable per-signature fields (Depth, counters, calibration state) are
// owned by the avoidance cache's guard; History only reads them during
// Save, which callers must invoke from the monitor.
type History struct {
	mu      sync.RWMutex
	path    string
	sigs    []*Signature
	byID    map[string]*Signature
	version atomic.Uint64

	// tombs records removed signatures (format v2): each removal leaves a
	// tombstone carrying the revision that superseded the live entry, so
	// merging an older snapshot that still contains the signature cannot
	// resurrect it. Compaction drops a tombstone only when the history
	// holds more than maxTombs of them AND the tombstone is older than
	// minTombAge — count alone (the pre-PR-4 rule) let a single burst of
	// removals evict a fresh tombstone that a stale peer then overrode.
	tombs      map[string]Tombstone
	maxTombs   int
	minTombAge time.Duration

	// fingerprint identifies the build that produced this snapshot (set
	// by the runtime at startup, persisted in format v2). Sync pulls use
	// it to decide whether sigport rules must be applied to an incoming
	// snapshot from a different code revision (§8 porting).
	fingerprint string

	// danger is the epoch-versioned dangerous-stack index consulted by
	// the avoidance fast path. It is republished (immutable snapshot)
	// inside every mutation's critical section; see DangerIndex.
	danger atomic.Pointer[DangerIndex]

	// notify, when set, is invoked after every semantic mutation (add,
	// disable/enable, remove, merge, replace) — the runtime's
	// observability hook. It runs with h.mu held, so it must be
	// non-blocking and must never call back into the History; the
	// runtime wires it to the bounded event bus, which satisfies both.
	notify func(Change)
}

// Change describes one history mutation for the notify hook.
type Change struct {
	// Op is "add", "disable", "enable", "remove", "merge" or "replace".
	Op string
	// SigID is the affected signature for single-entry ops ("" for
	// bulk merges/replaces).
	SigID string
	// Epoch is the history version (= danger-index epoch) after the
	// mutation; Signatures the live entry count.
	Epoch      uint64
	Signatures int
}

// SetNotify installs the mutation hook (nil clears it). See the notify
// field for the contract.
func (h *History) SetNotify(fn func(Change)) {
	h.mu.Lock()
	h.notify = fn
	h.mu.Unlock()
}

// notifyLocked fires the hook for one mutation; h.mu must be held by a
// writer, after the version bump.
func (h *History) notifyLocked(op, sigID string) {
	if h.notify != nil {
		h.notify(Change{Op: op, SigID: sigID, Epoch: h.version.Load(), Signatures: len(h.sigs)})
	}
}

// Tombstone marks a removed signature. Rev is strictly greater than the
// revision of the live entry it superseded; a live entry only resurrects
// through a merge when its revision exceeds the tombstone's (e.g. the
// deadlock manifested again after the removal and was re-archived).
type Tombstone struct {
	ID          string
	Rev         uint64
	DeletedUnix int64
}

// DefaultMaxTombstones bounds how many tombstones a history retains.
// Compaction drops the oldest (by deletion time, then revision) beyond
// the bound — the price is that a sufficiently stale snapshot could
// resurrect a removal that old, which keeps the store size bounded
// (§5.3's history-growth argument applied to removals).
const DefaultMaxTombstones = 4096

// DefaultMinTombstoneAge is how long a tombstone is retained regardless
// of the count bound: eviction requires being over DefaultMaxTombstones
// AND older than this. A week covers any realistic peer staleness (a
// machine down over a long weekend still cannot resurrect a removal),
// while still letting truly ancient tombstones drain once the count
// bound is hit.
const DefaultMinTombstoneAge = 7 * 24 * time.Hour

// DangerIndex is an immutable over-approximation of the call stacks that
// can participate in any enabled signature. Signature stacks are indexed
// per effective matching depth:
//
//   - A signature whose depth could change without a history-version bump
//     — calibration is armed (Calib.On) or was ever configured
//     (Calib.MaxDepth > 0), so rung advances and NT re-arms move the
//     effective depth silently — is indexed by innermost frame alone.
//     Matching at any depth d >= 1 implies the innermost frames agree,
//     and the depth <= 0 / short-stack fallbacks compare full stacks
//     (which also implies it), so the frame bucket over-approximates
//     every rung the ladder may move through.
//
//   - A fixed-depth signature stack is indexed by the hash of its
//     innermost EffectiveDepth frames (stack.HashAtDepth, which falls
//     back to the full-stack hash when the stack is shorter than the
//     depth or the depth is <= 0). Probing a request stack with the same
//     HashAtDepth expression is conservative for every length case of
//     MatchesAtDepth: when both stacks reach the depth, the prefix
//     hashes are equal whenever the prefixes match; the length-mismatch
//     fallbacks require full equality, which implies equal full hashes;
//     hash collisions only yield false "dangerous" verdicts. This keeps
//     stacks that merely share an innermost frame with a deep signature
//     — but diverge within its matching window — on the lock-free fast
//     path.
//
// A stack absent from every bucket can never match an enabled signature
// stack at its effective depth. That is the soundness argument for the
// lock-free fast path: "safe" verdicts stay valid until the signature set
// itself changes, at which point a new index with a fresh epoch is
// published and all cached markers self-invalidate.
type DangerIndex struct {
	epoch    uint64
	frames   map[stack.Frame]struct{}    // depth-volatile sigs: innermost frame
	prefixes map[int]map[uint64]struct{} // fixed depth d -> HashAtDepth(d) set

	// shallowDepth is the published max-effective-depth: the number of
	// innermost frames that fully determine this index's Dangerous
	// verdict, so a capture truncated to at least that many application
	// frames classifies identically to a full capture (the depth-bounded
	// fast-tier capture's soundness contract). 0 is the conservative
	// full-capture envelope: some signature's verdict can depend on
	// frames at unbounded depth — a calibration-capable signature whose
	// effective matching depth moves without an epoch bump (its eventual
	// depth must also stay exact for guarded matching against entries
	// recorded under shallow keys), or a depth<=0 signature whose index
	// bucket hashes complete stacks. See ShallowDepth.
	shallowDepth int
}

// Epoch returns the history version this index was built from. Epochs
// start at 1 so the zero marker on an interned stack never validates.
func (d *DangerIndex) Epoch() uint64 { return d.epoch }

// ShallowDepth returns how many innermost frames suffice for Dangerous
// to reach its full-capture verdict, or 0 when only a full capture is
// sound (the conservative envelope).
//
// The per-bucket argument: the frames bucket probes s[0] only, so it
// needs 1 frame; a prefixes[d] bucket (d >= 1) probes HashAtDepth(d),
// which hashes the innermost d frames whenever len(s) >= d — and a
// capture truncated at bound >= d either has >= d frames (same hash as
// the full stack) or was not truncated at all (it IS the full stack).
// The envelope cases are exactly the ones rebuildDangerLocked cannot
// bound: prefixes[0] hashes complete stacks, and a calibration-capable
// signature's ladder moves its matching depth between epochs.
func (d *DangerIndex) ShallowDepth() int { return d.shallowDepth }

// Dangerous reports whether s could match any enabled signature stack at
// its effective matching depth (an over-approximation; false is
// authoritative).
func (d *DangerIndex) Dangerous(s stack.Stack) bool {
	if len(d.frames) == 0 && len(d.prefixes) == 0 {
		return len(s) == 0 // empty stacks never get the fast path
	}
	if len(s) == 0 {
		return true
	}
	if _, hit := d.frames[s[0]]; hit {
		return true
	}
	for depth, hs := range d.prefixes {
		if _, hit := hs[s.HashAtDepth(depth)]; hit {
			return true
		}
	}
	return false
}

// Len returns the number of distinct indexed keys (innermost frames plus
// per-depth prefix hashes).
func (d *DangerIndex) Len() int {
	n := len(d.frames)
	for _, hs := range d.prefixes {
		n += len(hs)
	}
	return n
}

// NewHistory returns an empty, unbacked history (nothing persists until
// SetPath/SaveTo).
func NewHistory() *History {
	h := &History{
		byID:       make(map[string]*Signature),
		tombs:      make(map[string]Tombstone),
		maxTombs:   DefaultMaxTombstones,
		minTombAge: DefaultMinTombstoneAge,
	}
	h.version.Store(1)
	h.danger.Store(&DangerIndex{epoch: 1, shallowDepth: 1})
	return h
}

// Danger returns the current dangerous-stack index. The returned snapshot
// is immutable; its epoch equals Version() at the time it was published.
func (h *History) Danger() *DangerIndex { return h.danger.Load() }

// rebuildDangerLocked republishes the danger index; h.mu must be held by
// a writer, after version has been bumped for the mutation.
func (h *History) rebuildDangerLocked() {
	idx := &DangerIndex{epoch: h.version.Load(), shallowDepth: 1}
	for _, s := range h.sigs {
		if s.Disabled {
			continue
		}
		// Calibration-capable signatures change effective depth without a
		// version bump (rung advances, NT re-arms), so they take the
		// depth-independent innermost-frame bucket. Fixed-depth signatures
		// index at their effective depth; depth 1 also reduces to the
		// frame bucket (HashAtDepth(1) keys would work but the frame set
		// is cheaper to probe).
		volatileDepth := s.Calib.On || s.Calib.MaxDepth > 0
		d := s.EffectiveDepth()
		// Max-effective-depth publication for the shallow-capture fast
		// tier: classification by the frames bucket needs only frame 0,
		// but a calibration-live ladder will later *match* at rungs the
		// index cannot see — force the full-capture envelope so every
		// stack that could ever cover one of its positions is recorded
		// exactly. Depth <= 0 hashes complete stacks: envelope too.
		if volatileDepth || d <= 0 {
			idx.shallowDepth = 0
		} else if idx.shallowDepth > 0 && d > idx.shallowDepth {
			idx.shallowDepth = d
		}
		for _, st := range s.Stacks {
			if len(st) == 0 {
				continue
			}
			if volatileDepth || d == 1 {
				if idx.frames == nil {
					idx.frames = make(map[stack.Frame]struct{})
				}
				idx.frames[st[0]] = struct{}{}
				continue
			}
			e := d
			if e <= 0 {
				e = 0 // full-stack hash bucket
			}
			if idx.prefixes == nil {
				idx.prefixes = make(map[int]map[uint64]struct{})
			}
			hs := idx.prefixes[e]
			if hs == nil {
				hs = make(map[uint64]struct{})
				idx.prefixes[e] = hs
			}
			hs[st.HashAtDepth(e)] = struct{}{}
		}
	}
	h.danger.Store(idx)
}

// Load reads a history file. A missing file yields an empty history bound
// to path (the common first-run case).
func Load(path string) (*History, error) {
	h := NewHistory()
	h.path = path
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return h, nil
	}
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if err := h.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return h, nil
}

// Path returns the backing file path ("" if unbacked).
func (h *History) Path() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.path
}

// SetPath rebinds the backing file.
func (h *History) SetPath(path string) {
	h.mu.Lock()
	h.path = path
	h.mu.Unlock()
}

// Version increments on every membership or persisted-state change; the
// avoidance cache uses it to invalidate its signature match index.
func (h *History) Version() uint64 { return h.version.Load() }

// Add inserts sig if no signature with the same stack multiset exists.
// It reports whether the signature was new. Duplicate signatures are
// disallowed, which bounds history growth (§5.3). Adding over a tombstone
// resurrects deliberately — the pattern manifested again after removal —
// and the new entry's revision supersedes the tombstone's, so the
// resurrection wins subsequent merges.
func (h *History) Add(sig *Signature) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byID[sig.ID]; dup {
		return false
	}
	if sig.Rev == 0 {
		sig.Rev = 1
	}
	if t, ok := h.tombs[sig.ID]; ok {
		if sig.Rev <= t.Rev {
			sig.Rev = t.Rev + 1
		}
		delete(h.tombs, sig.ID)
	}
	h.sigs = append(h.sigs, sig)
	h.byID[sig.ID] = sig
	h.version.Add(1)
	h.rebuildDangerLocked()
	h.notifyLocked("add", sig.ID)
	return true
}

// Get returns the signature with the given ID, or nil.
func (h *History) Get(id string) *Signature {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.byID[id]
}

// Len returns the number of signatures.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.sigs)
}

// Snapshot returns the signatures in insertion order. The slice is fresh;
// the *Signature values are shared (see locking discipline above).
func (h *History) Snapshot() []*Signature {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Signature, len(h.sigs))
	copy(out, h.sigs)
	return out
}

// SetDisabled flips a signature's disabled flag (§5.7's "disable the last
// avoided signature"). A real state change bumps the entry's revision so
// the flip propagates through merges. It reports whether the signature
// exists.
func (h *History) SetDisabled(id string, disabled bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.byID[id]
	if s == nil {
		return false
	}
	changed := s.Disabled != disabled
	if changed {
		s.Disabled = disabled
		s.Rev++
	}
	h.version.Add(1)
	h.rebuildDangerLocked()
	if changed {
		op := "disable"
		if !disabled {
			op = "enable"
		}
		h.notifyLocked(op, id)
	}
	return true
}

// Remove deletes a signature (obsolete after an upgrade, §8), leaving a
// tombstone whose revision supersedes the removed entry's so the removal
// propagates through merges instead of being resurrected by older
// snapshots. It reports whether the signature existed.
func (h *History) Remove(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.byID[id]
	if !ok {
		return false
	}
	delete(h.byID, id)
	for i, e := range h.sigs {
		if e.ID == id {
			h.sigs = append(h.sigs[:i], h.sigs[i+1:]...)
			break
		}
	}
	h.tombs[id] = Tombstone{ID: id, Rev: s.Rev + 1, DeletedUnix: time.Now().Unix()}
	h.compactTombsLocked()
	h.version.Add(1)
	h.rebuildDangerLocked()
	h.notifyLocked("remove", id)
	return true
}

// Tombstones returns the removal tombstones in lexical ID order.
func (h *History) Tombstones() []Tombstone {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]Tombstone, 0, len(h.tombs))
	for _, t := range h.tombs {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RestoreTombstone installs a tombstone directly (porting and store
// plumbing). A live entry with a revision above the tombstone's is kept;
// otherwise the merge rule applies and the tombstone removes it.
func (h *History) RestoreTombstone(t Tombstone) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.byID[t.ID]; ok {
		if s.Rev > t.Rev {
			return
		}
		delete(h.byID, t.ID)
		for i, e := range h.sigs {
			if e.ID == t.ID {
				h.sigs = append(h.sigs[:i], h.sigs[i+1:]...)
				break
			}
		}
		h.version.Add(1)
		h.rebuildDangerLocked()
	}
	if lt, ok := h.tombs[t.ID]; ok && lt.Rev >= t.Rev {
		return
	}
	h.tombs[t.ID] = t
	h.compactTombsLocked()
}

// SetTombstoneLimit bounds the retained tombstones (<= 0 restores the
// default). Compaction applies immediately and on every future removal.
func (h *History) SetTombstoneLimit(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n <= 0 {
		n = DefaultMaxTombstones
	}
	h.maxTombs = n
	h.compactTombsLocked()
}

// SetTombstoneMinAge sets how long a tombstone is retained regardless of
// the count bound (0 restores the default; negative disables the age
// floor, reverting to the purely count-based compaction that let a
// removal burst evict fresh tombstones). Applies immediately.
func (h *History) SetTombstoneMinAge(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d == 0 {
		d = DefaultMinTombstoneAge
	}
	if d < 0 {
		d = -1
	}
	h.minTombAge = d
	h.compactTombsLocked()
}

// tombHardCapFactor bounds how far the age floor may stretch the
// tombstone set past maxTombs: beyond factor×maxTombs even young
// tombstones are dropped (oldest first), so a removal storm — which
// propagates to every fleet member — cannot grow snapshots without
// limit (§5.3's growth argument must survive adversarial bursts too).
const tombHardCapFactor = 4

// compactTombsLocked drops the oldest tombstones beyond maxTombs,
// keeping any younger than minTombAge: eviction requires exceeding the
// count bound AND the age floor, so the set may transiently exceed
// maxTombs after a removal burst rather than shed tombstones a merely
// days-stale peer would override (resurrecting the removed signature).
// The overshoot is itself hard-capped at tombHardCapFactor×maxTombs.
// h.mu must be held by a writer.
func (h *History) compactTombsLocked() {
	if h.maxTombs <= 0 {
		h.maxTombs = DefaultMaxTombstones
	}
	if len(h.tombs) <= h.maxTombs {
		return
	}
	all := make([]Tombstone, 0, len(h.tombs))
	for _, t := range h.tombs {
		all = append(all, t)
	}
	// Newest first: survivors are the most recent removals.
	sort.Slice(all, func(i, j int) bool {
		if all[i].DeletedUnix != all[j].DeletedUnix {
			return all[i].DeletedUnix > all[j].DeletedUnix
		}
		if all[i].Rev != all[j].Rev {
			return all[i].Rev > all[j].Rev
		}
		return all[i].ID < all[j].ID
	})
	ageFloor := h.minTombAge > 0
	var cutoff int64
	if ageFloor {
		cutoff = time.Now().Add(-h.minTombAge).Unix()
	}
	hardCap := tombHardCapFactor * h.maxTombs
	kept := h.maxTombs // all[:maxTombs] always survive
	for _, t := range all[h.maxTombs:] {
		if ageFloor && t.DeletedUnix >= cutoff && kept < hardCap {
			kept++
			continue // young enough that a stale peer could still re-push it
		}
		delete(h.tombs, t.ID)
	}
}

// CloneForStore deep-copies the history into a private snapshot for
// store pushes: the live *Signature values are shared with the avoidance
// layer, whose guard owns their mutable fields (counters, calibration,
// adopted disabled state) — so marshaling the live history from a sync
// goroutine would race with lock traffic. Callers must hold that guard
// across the clone (see avoidance.Cache.WithGuard); the returned copy
// shares nothing mutable and can be serialized or pushed lock-free.
func (h *History) CloneForStore() *History {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := NewHistory()
	out.path = h.path
	out.fingerprint = h.fingerprint
	out.maxTombs = h.maxTombs
	out.minTombAge = h.minTombAge
	for _, s := range h.sigs {
		cp := *s
		cp.Stacks = make([]stack.Stack, len(s.Stacks))
		for i, st := range s.Stacks {
			cp.Stacks[i] = st.Clone()
		}
		cp.Calib = s.Calib.Clone() // the ladder's counter slices are live
		out.sigs = append(out.sigs, &cp)
		out.byID[cp.ID] = &cp
	}
	for id, t := range h.tombs {
		out.tombs[id] = t
	}
	out.version.Store(h.version.Load())
	out.rebuildDangerLocked()
	return out
}

// Fingerprint returns the build fingerprint recorded in this snapshot
// ("" when unknown or mixed).
func (h *History) Fingerprint() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.fingerprint
}

// SetFingerprint stamps the snapshot with the producing build's identity.
func (h *History) SetFingerprint(fp string) {
	h.mu.Lock()
	h.fingerprint = fp
	h.mu.Unlock()
}

// Merge joins other's entries and tombstones into h — the §8 "proactive
// distribution" path (vendors shipping signatures to users, fleets
// pooling what they learn). The join is a deterministic, commutative,
// idempotent revision race per entry:
//
//   - an entry absent locally is added (a tombstone absent locally is
//     recorded, so removals keep propagating onward);
//   - between a live entry and a tombstone, the higher revision wins and
//     a tie goes to the tombstone — so merging an older snapshot never
//     resurrects a local removal;
//   - between two live entries, the higher revision's disabled state
//     wins; on a tie, disabled wins (the conservative state). Local
//     counters and calibration state are kept either way — they are
//     owned by the local avoidance guard, not merged.
//
// It returns how many local entries changed (adds, state adoptions,
// removals). A plain merge of brand-new signatures returns the number
// added, matching the historical contract.
//
// Merging into a history that live avoidance traffic reads must run
// inside the avoidance decision guard (the monitor's sync loop does):
// state adoption clones entries whose mutable fields that guard owns.
func (h *History) Merge(other *History) int {
	rsigs := other.Snapshot()
	rtombs := other.Tombstones()

	h.mu.Lock()
	defer h.mu.Unlock()
	changed := 0
	// Disabled-state adoptions notify per entry (after the version
	// bump): a §5.7 disable arriving over sync must reach the
	// observability stream exactly like a local SetDisabled.
	var disableFlips, enableFlips []string

	for _, rt := range rtombs {
		if s, ok := h.byID[rt.ID]; ok {
			if rt.Rev < s.Rev {
				continue // local resurrection is newer; keep it
			}
			delete(h.byID, rt.ID)
			for i, e := range h.sigs {
				if e.ID == rt.ID {
					h.sigs = append(h.sigs[:i], h.sigs[i+1:]...)
					break
				}
			}
			h.tombs[rt.ID] = rt
			changed++
			continue
		}
		if lt, ok := h.tombs[rt.ID]; ok {
			if rt.Rev > lt.Rev {
				h.tombs[rt.ID] = rt
				changed++
			}
			continue
		}
		h.tombs[rt.ID] = rt
		changed++
	}

	for _, r := range rsigs {
		if t, ok := h.tombs[r.ID]; ok {
			if r.Rev <= t.Rev {
				continue // our removal (or a propagated one) wins
			}
			delete(h.tombs, r.ID)
			h.sigs = append(h.sigs, r)
			h.byID[r.ID] = r
			changed++
			continue
		}
		if s, ok := h.byID[r.ID]; ok {
			// Adoption is clone-and-swap, never an in-place write: the
			// old *Signature may be held by avoidance matchers and user
			// snapshots, which read it without the history lock. (The
			// struct copy reads the counter fields the avoidance guard
			// owns, which is why runtime-live merges run under it.)
			switch {
			case r.Rev > s.Rev:
				ns := *s
				ns.Disabled = r.Disabled
				ns.Rev = r.Rev
				h.swapLocked(&ns)
				changed++
				if ns.Disabled != s.Disabled {
					if ns.Disabled {
						disableFlips = append(disableFlips, ns.ID)
					} else {
						enableFlips = append(enableFlips, ns.ID)
					}
				}
			case r.Rev == s.Rev && r.Disabled && !s.Disabled:
				ns := *s
				ns.Disabled = true
				h.swapLocked(&ns)
				changed++
				disableFlips = append(disableFlips, ns.ID)
			}
			continue
		}
		if r.Rev == 0 {
			r.Rev = 1
		}
		h.sigs = append(h.sigs, r)
		h.byID[r.ID] = r
		changed++
	}

	if changed > 0 {
		h.compactTombsLocked()
		h.version.Add(1)
		h.rebuildDangerLocked()
		for _, id := range disableFlips {
			h.notifyLocked("disable", id)
		}
		for _, id := range enableFlips {
			h.notifyLocked("enable", id)
		}
		h.notifyLocked("merge", "")
	}
	return changed
}

// swapLocked replaces the live entry for ns.ID with ns; h.mu must be
// held by a writer.
func (h *History) swapLocked(ns *Signature) {
	h.byID[ns.ID] = ns
	for i, e := range h.sigs {
		if e.ID == ns.ID {
			h.sigs[i] = ns
			return
		}
	}
}

// ReplaceAll atomically swaps the signature set (and tombstones) with the
// one from other — the §8 "reload the history without restarting" path.
func (h *History) ReplaceAll(other *History) {
	snap := other.Snapshot()
	tombs := other.Tombstones()
	fp := other.Fingerprint()
	h.mu.Lock()
	h.sigs = make([]*Signature, len(snap))
	copy(h.sigs, snap)
	h.byID = make(map[string]*Signature, len(snap))
	for _, s := range h.sigs {
		h.byID[s.ID] = s
	}
	h.tombs = make(map[string]Tombstone, len(tombs))
	for _, t := range tombs {
		h.tombs[t.ID] = t
	}
	if fp != "" {
		h.fingerprint = fp
	}
	h.version.Add(1)
	h.rebuildDangerLocked()
	h.notifyLocked("replace", "")
	h.mu.Unlock()
}

// persisted mirrors Signature for JSON with stacks in string form.
type persistedSig struct {
	ID          string      `json:"id"`
	Kind        string      `json:"kind"`
	Stacks      []string    `json:"stacks"`
	Depth       int         `json:"depth"`
	Rev         uint64      `json:"rev,omitempty"`
	Disabled    bool        `json:"disabled,omitempty"`
	CreatedUnix int64       `json:"created_unix,omitempty"`
	Source      string      `json:"source,omitempty"`
	AvoidCount  uint64      `json:"avoid_count,omitempty"`
	AbortCount  uint64      `json:"abort_count,omitempty"`
	FPCount     uint64      `json:"fp_count,omitempty"`
	TPCount     uint64      `json:"tp_count,omitempty"`
	Calib       calib.State `json:"calib,omitempty"`
}

type persistedTomb struct {
	ID          string `json:"id"`
	Rev         uint64 `json:"rev"`
	DeletedUnix int64  `json:"deleted_unix,omitempty"`
}

// FormatVersion is the current on-disk format. v2 adds per-entry
// revisions, removal tombstones, and the build fingerprint; v1 files
// (no revisions, no tombstones) load transparently with every entry at
// revision 1 and save back as v2.
const FormatVersion = 2

type persistedHistory struct {
	Format      int             `json:"format"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Signatures  []persistedSig  `json:"signatures"`
	Tombstones  []persistedTomb `json:"tombstones,omitempty"`
}

func (h *History) persistedLocked() persistedHistory {
	p := persistedHistory{Format: FormatVersion, Fingerprint: h.fingerprint}
	for _, s := range h.sigs {
		ps := persistedSig{
			ID:          s.ID,
			Kind:        s.Kind.String(),
			Depth:       s.Depth,
			Rev:         s.Rev,
			Disabled:    s.Disabled,
			CreatedUnix: s.CreatedUnix,
			Source:      s.Source,
			AvoidCount:  s.AvoidCount,
			AbortCount:  s.AbortCount,
			FPCount:     s.FPCount,
			TPCount:     s.TPCount,
			Calib:       s.Calib,
		}
		for _, st := range s.Stacks {
			ps.Stacks = append(ps.Stacks, st.String())
		}
		p.Signatures = append(p.Signatures, ps)
	}
	ids := make([]string, 0, len(h.tombs))
	for id := range h.tombs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := h.tombs[id]
		p.Tombstones = append(p.Tombstones, persistedTomb{ID: t.ID, Rev: t.Rev, DeletedUnix: t.DeletedUnix})
	}
	return p
}

// MarshalJSON serializes the history (format v2, indented).
func (h *History) MarshalJSON() ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return json.MarshalIndent(h.persistedLocked(), "", "  ")
}

// MarshalJSONCompact serializes the history as a single line (format v2),
// the record form used by DirStore journals.
func (h *History) MarshalJSONCompact() ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return json.Marshal(h.persistedLocked())
}

// UnmarshalJSON replaces the in-memory set with the serialized one.
// Formats v1 (and the pre-format files with format 0) load transparently:
// entries get revision 1 and there are no tombstones.
func (h *History) UnmarshalJSON(data []byte) error {
	var p persistedHistory
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("history: parse: %w", err)
	}
	if p.Format > FormatVersion {
		return fmt.Errorf("history: format %d is newer than this build supports (%d)", p.Format, FormatVersion)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sigs = nil
	h.byID = make(map[string]*Signature)
	h.tombs = make(map[string]Tombstone)
	h.fingerprint = p.Fingerprint
	for _, pt := range p.Tombstones {
		rev := pt.Rev
		if rev == 0 {
			rev = 1
		}
		h.tombs[pt.ID] = Tombstone{ID: pt.ID, Rev: rev, DeletedUnix: pt.DeletedUnix}
	}
	for _, ps := range p.Signatures {
		kind := Deadlock
		if ps.Kind == "starvation" {
			kind = Starvation
		}
		stacks := make([]stack.Stack, 0, len(ps.Stacks))
		for _, raw := range ps.Stacks {
			st, err := stack.Parse(raw)
			if err != nil {
				return fmt.Errorf("history: signature %s: %w", ps.ID, err)
			}
			stacks = append(stacks, st)
		}
		s := New(kind, stacks, ps.Depth)
		s.Disabled = ps.Disabled
		s.Rev = ps.Rev
		if s.Rev == 0 {
			s.Rev = 1 // v1 migration: every entry starts at revision 1
		}
		if ps.CreatedUnix != 0 {
			s.CreatedUnix = ps.CreatedUnix
		}
		s.Source = ps.Source
		s.AvoidCount = ps.AvoidCount
		s.AbortCount = ps.AbortCount
		s.FPCount = ps.FPCount
		s.TPCount = ps.TPCount
		s.Calib = ps.Calib
		if _, dup := h.byID[s.ID]; dup {
			continue
		}
		// A malformed snapshot carrying both a live entry and a tombstone
		// for one ID resolves by the merge rule: higher revision wins,
		// ties go to the tombstone.
		if t, ok := h.tombs[s.ID]; ok {
			if s.Rev <= t.Rev {
				continue
			}
			delete(h.tombs, s.ID)
		}
		h.sigs = append(h.sigs, s)
		h.byID[s.ID] = s
	}
	h.compactTombsLocked()
	h.version.Add(1)
	h.rebuildDangerLocked()
	return nil
}

// Save writes the history to its backing path atomically (write to a
// temporary file in the same directory, then rename). A history without a
// path saves nowhere and returns nil.
func (h *History) Save() error {
	path := h.Path()
	if path == "" {
		return nil
	}
	return h.SaveTo(path)
}

// SaveTo writes the history to path atomically.
func (h *History) SaveTo(path string) error {
	data, err := h.MarshalJSON()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".dimmunix-hist-*")
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("history: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("history: %w", err)
	}
	return nil
}

// SizeOnDiskEstimate returns the serialized size in bytes (for the §7.4
// resource-utilization report).
func (h *History) SizeOnDiskEstimate() int {
	data, err := h.MarshalJSON()
	if err != nil {
		return 0
	}
	return len(data)
}

// SortedIDs returns the signature IDs in lexical order (stable tooling
// output).
func (h *History) SortedIDs() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ids := make([]string, 0, len(h.sigs))
	for id := range h.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
