// Package gid extracts goroutine identities.
//
// The Go runtime deliberately hides goroutine IDs, but Dimmunix's
// thread-identity substrate needs one per "application thread" (§5.1's
// thread nodes). The implicit API path obtains it by parsing the header
// line of runtime.Stack ("goroutine N [running]:"), which is stable across
// all Go releases to date. Because the parse costs a stack dump, callers on
// hot paths should prefer the explicit Thread-handle API in internal/core;
// this package exists so the implicit path works at all, and its cost is
// measured by BenchmarkCurrent (the ablation in DESIGN.md §5.2).
package gid

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 64); return &b },
}

var prefix = []byte("goroutine ")

// Current returns the current goroutine's ID. It never fails on a
// conforming runtime; if the header cannot be parsed it returns 0, which is
// never a valid goroutine ID.
func Current() uint64 {
	bp := bufPool.Get().(*[]byte)
	b := *bp
	n := runtime.Stack(b, false)
	id := parse(b[:n])
	bufPool.Put(bp)
	return id
}

// parse extracts N from "goroutine N [...".
func parse(b []byte) uint64 {
	if !bytes.HasPrefix(b, prefix) {
		return 0
	}
	b = b[len(prefix):]
	end := bytes.IndexByte(b, ' ')
	if end <= 0 {
		return 0
	}
	id, err := strconv.ParseUint(string(b[:end]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}
