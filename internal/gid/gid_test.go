package gid

import (
	"sync"
	"testing"
)

func TestCurrentNonZero(t *testing.T) {
	if Current() == 0 {
		t.Fatal("Current returned 0")
	}
}

func TestCurrentStableWithinGoroutine(t *testing.T) {
	a := Current()
	b := Current()
	if a != b {
		t.Fatalf("same goroutine returned different ids: %d vs %d", a, b)
	}
}

func TestCurrentDistinctAcrossGoroutines(t *testing.T) {
	const G = 32
	ids := make(chan uint64, G)
	var wg sync.WaitGroup
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- Current()
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool)
	for id := range ids {
		if id == 0 {
			t.Fatal("goroutine got id 0")
		}
		if seen[id] {
			t.Fatalf("duplicate goroutine id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != G {
		t.Fatalf("got %d distinct ids, want %d", len(seen), G)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"goroutine 1 [running]:\nmain.main()", 1},
		{"goroutine 4711 [select]:\n", 4711},
		{"gorout", 0},
		{"goroutine  [running]", 0},
		{"goroutine x [running]", 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := parse([]byte(c.in)); got != c.want {
			t.Errorf("parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func BenchmarkCurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Current()
	}
}
