package queue

import (
	"sync"
	"testing"
)

func TestPushPopSingle(t *testing.T) {
	q := New[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	q.Push(1)
	q.Push(2)
	q.Push(3)
	for want := 1; want <= 3; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d,true", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestEmptyLen(t *testing.T) {
	q := New[string]()
	if !q.Empty() {
		t.Error("new queue should be empty")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
	q.Push("a")
	if q.Empty() {
		t.Error("queue with element should not be empty")
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	q.Pop()
	if !q.Empty() || q.Len() != 0 {
		t.Error("queue should be empty after pop")
	}
}

func TestDrain(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	var got []int
	n := q.Drain(func(v int) { got = append(got, v) })
	if n != 10 {
		t.Fatalf("Drain = %d, want 10", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestPerProducerFIFO verifies the ordering guarantee the monitor relies
// on: events from the same producer are consumed in push order.
func TestPerProducerFIFO(t *testing.T) {
	type ev struct{ producer, seq int }
	q := New[ev]()
	const P, N = 8, 5000
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				q.Push(ev{p, i})
			}
		}(p)
	}

	lastSeen := make([]int, P)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	total := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for total < P*N {
		v, ok := q.Pop()
		if !ok {
			select {
			case <-done:
				// producers finished; drain whatever remains
				if q.Empty() && total < P*N {
					// momentary disconnection possible; retry
					continue
				}
			default:
			}
			continue
		}
		if v.seq != lastSeen[v.producer]+1 {
			t.Fatalf("producer %d: got seq %d after %d", v.producer, v.seq, lastSeen[v.producer])
		}
		lastSeen[v.producer] = v.seq
		total++
	}
	if total != P*N {
		t.Fatalf("consumed %d, want %d", total, P*N)
	}
}

// TestNoLossNoDup: every pushed value is popped exactly once.
func TestNoLossNoDup(t *testing.T) {
	q := New[int]()
	const P, N = 16, 2000
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				q.Push(p*N + i)
			}
		}(p)
	}
	seen := make([]bool, P*N)
	count := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	finished := false
	for {
		v, ok := q.Pop()
		if ok {
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
			count++
			continue
		}
		if finished && q.Empty() {
			break
		}
		select {
		case <-done:
			finished = true
		default:
		}
	}
	if count != P*N {
		t.Fatalf("popped %d, want %d", count, P*N)
	}
}

func TestPopReleasesValue(t *testing.T) {
	q := New[*int]()
	x := new(int)
	q.Push(x)
	v, ok := q.Pop()
	if !ok || v != x {
		t.Fatal("pop mismatch")
	}
	// The node's val must have been zeroed; we can't observe the node
	// directly, but pushing and popping again exercises reuse paths.
	q.Push(nil)
	if v, ok := q.Pop(); !ok || v != nil {
		t.Fatal("second pop mismatch")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New[int]()
	stop := make(chan struct{})
	var produced, consumed int
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				q.Push(i)
			}
		}
	}()
	last := -1
	for consumed < 10000 {
		if v, ok := q.Pop(); ok {
			if v != last+1 {
				t.Fatalf("single producer FIFO violated: %d after %d", v, last)
			}
			last = v
			consumed++
		}
	}
	close(stop)
	_ = produced
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
		}
	})
	// drain outside timing of interest; Push is the hot path
}

func BenchmarkPushDrain(b *testing.B) {
	q := New[int]()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%64 == 63 {
			q.Drain(func(int) {})
		}
	}
}
