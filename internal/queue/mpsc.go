// Package queue implements the lock-free multi-producer single-consumer
// event queue that decouples Dimmunix's avoidance instrumentation from the
// monitor thread (§3, Figure 1: "async event queue, lock-free").
//
// The design is Vyukov's intrusive MPSC queue: producers publish with a
// single atomic exchange (wait-free for producers among themselves); the
// single consumer follows next pointers. Events enqueued by the same
// producer are FIFO with respect to each other — exactly the partial order
// §5.2 requires: a release event on L in Ti appears before any later
// acquired event on L in Tj because the producer-side happens-before edge
// (unlock in Ti ≺ lock completes in Tj) orders the two exchanges.
//
// With batched publication (core Config.EventBatch) a producer's
// per-thread events travel inside Batch carrier events. Per-thread order
// is preserved because a thread's buffer publishes while holding the
// buffer's mutex — a monitor-side flush (Cache.FlushBuffers) that steals
// the buffer serializes with the owner's in-progress append/publish, so
// two batches from the same thread can never reach the Push exchange out
// of order, and a directly-emitted event (Yield/Cancel/exit) always
// flushes the buffer first, keeping the §5.2 edge above intact.
package queue

import (
	"sync"
	"sync/atomic"
)

type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  T
}

// MPSC is a multi-producer single-consumer unbounded FIFO queue.
// Push may be called from any goroutine; Pop and Drain must be called from
// a single consumer goroutine at a time. The zero value is not ready for
// use; call New.
//
// Nodes are recycled through a sync.Pool: once the consumer advances past
// the old tail, no producer can reference it (producers only ever touch
// the head), so steady-state event emission allocates nothing.
type MPSC[T any] struct {
	head atomic.Pointer[node[T]] // producers swap this
	tail *node[T]                // consumer-owned
	len  atomic.Int64
	pool sync.Pool
}

// New returns an empty queue.
func New[T any]() *MPSC[T] {
	q := &MPSC[T]{}
	q.pool.New = func() any { return new(node[T]) }
	stub := &node[T]{}
	q.head.Store(stub)
	q.tail = stub
	return q
}

// Push enqueues v. Safe for concurrent use by any number of producers.
func (q *MPSC[T]) Push(v T) {
	n := q.pool.Get().(*node[T])
	n.next.Store(nil)
	n.val = v
	prev := q.head.Swap(n)
	// Between the Swap and this Store the queue is momentarily
	// disconnected; the consumer observes next == nil and treats the
	// queue as empty until the link is published. No events are lost.
	prev.next.Store(n)
	q.len.Add(1)
}

// Pop dequeues one value. Returns the zero value and false when the queue
// is (observably) empty. Must only be called by the single consumer.
func (q *MPSC[T]) Pop() (T, bool) {
	tail := q.tail
	next := tail.next.Load()
	if next == nil {
		var zero T
		return zero, false
	}
	q.tail = next
	v := next.val
	var zero T
	next.val = zero // release reference for GC
	q.len.Add(-1)
	// The old tail is unreachable now: producers only reference nodes
	// obtained from the head swap, and this one left the head position
	// the moment its successor was pushed. Recycle it.
	tail.next.Store(nil)
	q.pool.Put(tail)
	return v, true
}

// Drain dequeues every currently observable element, calling fn on each,
// and returns the number drained. Must only be called by the consumer.
func (q *MPSC[T]) Drain(fn func(T)) int {
	n := 0
	for {
		v, ok := q.Pop()
		if !ok {
			return n
		}
		fn(v)
		n++
	}
}

// Len returns an approximate number of enqueued elements. It may
// transiently disagree with reality while producers are mid-publish.
func (q *MPSC[T]) Len() int {
	n := q.len.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the consumer would currently observe an empty
// queue.
func (q *MPSC[T]) Empty() bool {
	return q.tail.next.Load() == nil
}
