// Package trace is Dimmunix's predictive-immunity substrate: an opt-in,
// low-overhead recorder that journals lock acquisition/release events to
// an append-only binary file, and a reader that loads such journals for
// offline deadlock prediction (cmd/dimmunix-predict).
//
// The recorder hangs off the monitor goroutine, which already drains
// every instrumentation event — including the ones emitted by the
// lock-free fast tier — so tracing costs the lock path nothing: the only
// added work runs on the monitor thread, between passes.
//
// File format (little-endian):
//
//	header:  "DIMXTRC1" | u16 fplen | fingerprint bytes
//	stack:   0x01 | u32 ref | u16 len | stack.String bytes
//	event:   0x02 | u8 op | u32 tid | u64 lid | u32 ref | u64 seq
//
// Call stacks are interned per file: the first event using a stack is
// preceded by one stack record assigning it a file-local ref; later
// events carry only the ref. Events without a stack (releases) carry
// NoStackRef. A crash mid-write leaves at most one torn trailing record,
// which the reader tolerates (Trace.Truncated); everything before it is
// intact because records are appended through one buffered writer.
//
// The file is bounded: when it exceeds MaxBytes the recorder rotates it
// to path+".1" (replacing any previous rotation) and starts a fresh file
// with a fresh stack table. ReadAll reads the rotated file first, so a
// bounded trace still yields one ordered record stream.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"dimmunix/internal/event"
	"dimmunix/internal/stack"
)

const magic = "DIMXTRC1"

// DefaultMaxBytes bounds one trace file when Config.TraceMaxBytes is
// left zero: 64 MiB holds tens of millions of events, while rotation
// keeps a long-running canary from filling the disk.
const DefaultMaxBytes int64 = 64 << 20

// NoStackRef marks an event record without a call stack (releases: the
// monitor already knows the edge, so the instrumentation never captures
// one).
const NoStackRef uint32 = ^uint32(0)

const (
	tagStack byte = 1
	tagEvent byte = 2
)

// eventSize is the fixed on-disk size of one event record (tag + op +
// tid + lid + ref + seq).
const eventSize = 1 + 1 + 4 + 8 + 4 + 8

// Recorder journals acquisition events. It is safe for concurrent use,
// though the runtime feeds it from the single monitor goroutine; the
// mutex exists for the Close path and for tests.
type Recorder struct {
	records atomic.Uint64 // event records written
	dropped atomic.Uint64 // events lost to write errors or a closed recorder

	mu       sync.Mutex
	path     string
	fp       string
	maxBytes int64 // <= 0: unbounded
	f        *os.File
	w        *bufio.Writer
	size     int64
	refs     map[uint32]uint32 // stack.Interned.ID -> file-local ref
	nextRef  uint32
	seq      uint64
	closed   bool
	buf      [eventSize]byte
}

// NewRecorder opens (truncating) the journal at path. fingerprint stamps
// the header (signature.BuildFingerprint form); maxBytes bounds the file
// before rotation (0 selects DefaultMaxBytes, negative disables
// rotation).
func NewRecorder(path, fingerprint string, maxBytes int64) (*Recorder, error) {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	r := &Recorder{
		path:     path,
		fp:       fingerprint,
		maxBytes: maxBytes,
		refs:     make(map[uint32]uint32),
	}
	if err := r.openLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// openLocked starts a fresh journal file with its header; r.mu held (or
// the recorder not yet published).
func (r *Recorder) openLocked() error {
	f, err := os.Create(r.path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	r.f = f
	r.w = bufio.NewWriterSize(f, 1<<16)
	r.size = 0
	r.refs = make(map[uint32]uint32)
	r.nextRef = 0
	fp := r.fp
	if len(fp) > 0xffff {
		fp = fp[:0xffff]
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(fp)))
	if _, err := r.w.WriteString(magic); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if _, err := r.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if _, err := r.w.WriteString(fp); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	r.size = int64(len(magic) + 2 + len(fp))
	return nil
}

// Record journals one instrumentation event. Only Acquired and Release
// events are persisted — they are what lock-set construction consumes;
// the rest of the protocol stream (requests, gos, yields) carries no
// extra ordering information for prediction. Never blocks the caller on
// I/O beyond the buffered write; errors count the event as dropped.
func (r *Recorder) Record(ev event.Event) {
	if ev.Kind != event.Acquired && ev.Kind != event.Release {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.dropped.Add(1)
		return
	}
	ref := NoStackRef
	if ev.Stack != nil {
		var ok bool
		if ref, ok = r.refs[ev.Stack.ID]; !ok {
			ref = r.nextRef
			if err := r.writeStackLocked(ref, ev.Stack.S); err != nil {
				r.dropped.Add(1)
				return
			}
			r.refs[ev.Stack.ID] = ref
			r.nextRef++
		}
	}
	b := r.buf[:]
	b[0] = tagEvent
	b[1] = byte(ev.Kind)
	binary.LittleEndian.PutUint32(b[2:], uint32(ev.TID))
	binary.LittleEndian.PutUint64(b[6:], ev.LID)
	binary.LittleEndian.PutUint32(b[14:], ref)
	binary.LittleEndian.PutUint64(b[18:], r.seq)
	if _, err := r.w.Write(b); err != nil {
		r.dropped.Add(1)
		return
	}
	r.seq++
	r.size += eventSize
	r.records.Add(1)
	if r.maxBytes > 0 && r.size >= r.maxBytes {
		r.rotateLocked()
	}
}

// writeStackLocked appends one stack-define record; r.mu held.
func (r *Recorder) writeStackLocked(ref uint32, s stack.Stack) error {
	str := s.String()
	if len(str) > 0xffff {
		// Keep only whole frames that fit; a partial frame would not
		// parse back. Stacks this deep never occur in practice
		// (MaxCaptureDepth bounds frames), but the format must not be
		// corruptible by one.
		if cut := strings.LastIndex(str[:0xffff], " < "); cut > 0 {
			str = str[:cut]
		} else {
			str = ""
		}
	}
	var hdr [7]byte
	hdr[0] = tagStack
	binary.LittleEndian.PutUint32(hdr[1:], ref)
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(str)))
	if _, err := r.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := r.w.WriteString(str); err != nil {
		return err
	}
	r.size += int64(len(hdr) + len(str))
	return nil
}

// rotateLocked moves the full journal to path+".1" (replacing a previous
// rotation) and starts a fresh file. The stack table resets with the
// file: each journal is self-contained. Sequence numbers keep running so
// ReadAll yields one monotonic stream. Rotation failures keep appending
// to the oversized file — losing the bound beats losing the trace.
func (r *Recorder) rotateLocked() {
	if err := r.w.Flush(); err != nil {
		return
	}
	if err := r.f.Close(); err != nil {
		return
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		// Reopen in append mode so recording continues into the same file.
		if f, oerr := os.OpenFile(r.path, os.O_WRONLY|os.O_APPEND, 0o644); oerr == nil {
			r.f = f
			r.w = bufio.NewWriterSize(f, 1<<16)
		} else {
			r.closed = true
		}
		return
	}
	if err := r.openLocked(); err != nil {
		r.closed = true
	}
}

// Records returns how many event records were journaled.
func (r *Recorder) Records() uint64 {
	if r == nil {
		return 0
	}
	return r.records.Load()
}

// Dropped returns how many events were lost — write errors, or arrivals
// after Close. Zero in a healthy deployment.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Path returns the journal path.
func (r *Recorder) Path() string { return r.path }

// Close flushes and closes the journal. Later Records count as dropped.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.w.Flush()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: close: %w", err)
	}
	return nil
}

// Record is one journaled event, stacks resolved.
type Record struct {
	Op    event.Kind
	TID   int32
	LID   uint64
	Seq   uint64
	Stack stack.Stack // nil when the event carried none
}

// Trace is a loaded journal (or pair of journals, see ReadAll).
type Trace struct {
	// Fingerprint is the recording build's identity (from the current
	// file's header when rotated).
	Fingerprint string
	// Records are the events in journal order.
	Records []Record
	// Truncated reports that the final record was torn (crash or kill
	// mid-write); everything in Records is intact.
	Truncated bool
}

// ReadFile loads one journal file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return read(bufio.NewReaderSize(f, 1<<16), path)
}

// ReadAll loads the journal at path together with its rotation
// predecessor path+".1" (when present, read first), yielding one ordered
// record stream.
func ReadAll(path string) (*Trace, error) {
	var out *Trace
	if prev, err := ReadFile(path + ".1"); err == nil {
		out = prev
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	cur, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return cur, nil
	}
	out.Fingerprint = cur.Fingerprint
	out.Records = append(out.Records, cur.Records...)
	out.Truncated = out.Truncated || cur.Truncated
	return out, nil
}

func read(br *bufio.Reader, path string) (*Trace, error) {
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: %s: short header: %w", path, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: %s: bad magic", path)
	}
	fplen := int(binary.LittleEndian.Uint16(hdr[len(magic):]))
	fp := make([]byte, fplen)
	if _, err := io.ReadFull(br, fp); err != nil {
		return nil, fmt.Errorf("trace: %s: short header: %w", path, err)
	}
	tr := &Trace{Fingerprint: string(fp)}
	stacks := make(map[uint32]stack.Stack)
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		switch tag {
		case tagStack:
			var sh [6]byte
			if _, err := io.ReadFull(br, sh[:]); err != nil {
				tr.Truncated = true
				return tr, nil
			}
			ref := binary.LittleEndian.Uint32(sh[:4])
			n := int(binary.LittleEndian.Uint16(sh[4:]))
			raw := make([]byte, n)
			if _, err := io.ReadFull(br, raw); err != nil {
				tr.Truncated = true
				return tr, nil
			}
			if n == 0 {
				stacks[ref] = nil
				continue
			}
			s, err := stack.Parse(string(raw))
			if err != nil {
				return nil, fmt.Errorf("trace: %s: stack %d: %w", path, ref, err)
			}
			stacks[ref] = s
		case tagEvent:
			var b [eventSize - 1]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				tr.Truncated = true
				return tr, nil
			}
			rec := Record{
				Op:  event.Kind(b[0]),
				TID: int32(binary.LittleEndian.Uint32(b[1:])),
				LID: binary.LittleEndian.Uint64(b[5:]),
				Seq: binary.LittleEndian.Uint64(b[17:]),
			}
			if ref := binary.LittleEndian.Uint32(b[13:]); ref != NoStackRef {
				rec.Stack = stacks[ref]
			}
			tr.Records = append(tr.Records, rec)
		default:
			return nil, fmt.Errorf("trace: %s: unknown record tag %d", path, tag)
		}
	}
}
