package trace

import (
	"os"
	"path/filepath"
	"testing"

	"dimmunix/internal/event"
	"dimmunix/internal/stack"
)

func intern(in *stack.Interner, seed uint64) *stack.Interned {
	return in.Intern(stack.Synthetic(seed, 4))
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	r, err := NewRecorder(path, "fp-test", -1)
	if err != nil {
		t.Fatal(err)
	}
	in := stack.NewInterner()
	s1, s2 := intern(in, 1), intern(in, 2)
	evs := []event.Event{
		{Kind: event.Acquired, TID: 1, LID: 10, Stack: s1},
		{Kind: event.Acquired, TID: 1, LID: 11, Stack: s2},
		{Kind: event.Release, TID: 1, LID: 11},
		{Kind: event.Acquired, TID: 2, LID: 11, Stack: s1}, // stack reuse: ref table hit
		{Kind: event.Request, TID: 2, LID: 12, Stack: s2},  // filtered out
		{Kind: event.Release, TID: 2, LID: 11},
	}
	for _, ev := range evs {
		r.Record(ev)
	}
	if got := r.Records(); got != 5 {
		t.Fatalf("Records() = %d, want 5 (Request filtered)", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r.Record(evs[0])
	if r.Dropped() != 1 {
		t.Fatalf("record after Close must count dropped, got %d", r.Dropped())
	}

	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fingerprint != "fp-test" {
		t.Fatalf("fingerprint = %q", tr.Fingerprint)
	}
	if tr.Truncated {
		t.Fatal("clean file reported truncated")
	}
	if len(tr.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(tr.Records))
	}
	want := []struct {
		op  event.Kind
		tid int32
		lid uint64
		st  stack.Stack
	}{
		{event.Acquired, 1, 10, s1.S},
		{event.Acquired, 1, 11, s2.S},
		{event.Release, 1, 11, nil},
		{event.Acquired, 2, 11, s1.S},
		{event.Release, 2, 11, nil},
	}
	for i, w := range want {
		g := tr.Records[i]
		if g.Op != w.op || g.TID != w.tid || g.LID != w.lid {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
		if w.st == nil && g.Stack != nil || w.st != nil && !g.Stack.Equal(w.st) {
			t.Fatalf("record %d stack = %v, want %v", i, g.Stack, w.st)
		}
		if g.Seq != uint64(i) {
			t.Fatalf("record %d seq = %d", i, g.Seq)
		}
	}
}

func TestTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	r, err := NewRecorder(path, "fp", -1)
	if err != nil {
		t.Fatal(err)
	}
	in := stack.NewInterner()
	s := intern(in, 7)
	for i := 0; i < 10; i++ {
		r.Record(event.Event{Kind: event.Acquired, TID: 1, LID: uint64(i), Stack: s})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < eventSize; cut++ {
		torn := filepath.Join(t.TempDir(), "torn.trace")
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := ReadFile(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !tr.Truncated {
			t.Fatalf("cut %d: torn file not reported truncated", cut)
		}
		if len(tr.Records) != 9 {
			t.Fatalf("cut %d: got %d records, want 9 intact", cut, len(tr.Records))
		}
	}
}

func TestEmptyAndHeaderOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	r, err := NewRecorder(path, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 0 || tr.Truncated {
		t.Fatalf("empty journal: %+v", tr)
	}
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestRotationBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	// Tiny bound: rotation after a handful of records.
	r, err := NewRecorder(path, "fp-rot", 256)
	if err != nil {
		t.Fatal(err)
	}
	in := stack.NewInterner()
	s := intern(in, 3)
	const n = 64
	for i := 0; i < n; i++ {
		r.Record(event.Event{Kind: event.Acquired, TID: 1, LID: uint64(i), Stack: s})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotation did not produce %s.1: %v", path, err)
	}
	tr, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	// ReadAll only spans the last rotation and the live file; earlier
	// rotations are replaced. Records must be ordered, contiguous at the
	// boundary, and every one must carry its (re-interned) stack.
	if len(tr.Records) < 2 {
		t.Fatalf("got %d records", len(tr.Records))
	}
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Seq != tr.Records[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, tr.Records[i-1].Seq, tr.Records[i].Seq)
		}
	}
	for i, rec := range tr.Records {
		if rec.Stack == nil {
			t.Fatalf("record %d lost its stack across rotation", i)
		}
		if !rec.Stack.Equal(s.S) {
			t.Fatalf("record %d stack mismatch", i)
		}
	}
	if tr.Records[len(tr.Records)-1].LID != n-1 {
		t.Fatalf("last record lid = %d", tr.Records[len(tr.Records)-1].LID)
	}
}
