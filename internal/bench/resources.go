package bench

import (
	"fmt"
	"runtime"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/workload"
)

// Resources reproduces §7.4: memory overhead across thread counts with a
// 64-signature history, history bytes per signature, and the CPU-side
// note that avoidance work can even reduce contention.
func Resources(s Scale) Report {
	rep := Report{
		ID:     "resources",
		Title:  "Resource utilization (64 two-thread signatures, 8 locks)",
		Header: []string{"Threads", "Heap delta", "Interned stacks", "History bytes/sig"},
	}
	threads := []int{2, 64, 256}
	if s.Full {
		threads = []int{2, 64, 256, 1024}
	}
	for _, n := range threads {
		heapBefore := heapAlloc()
		rt := core.MustNew(core.Config{
			Tau:        50 * time.Millisecond,
			MaxThreads: n + 8,
			StackDepth: 12,
		})
		r := workload.NewRunner(rt, workload.Config{
			Threads:  n,
			Locks:    8,
			DIn:      time.Microsecond,
			DOut:     time.Millisecond,
			Duration: 200 * time.Millisecond,
		})
		r.Warmup(150 * time.Millisecond)
		hist, err := workload.SynthesizeHistory(rt.CapturedStacks(), 64, 2, 4, 3)
		if err == nil {
			rt.History().Merge(hist)
		}
		r.Run()
		heapAfter := heapAlloc()
		stacks := len(rt.CapturedStacks())
		rt.Stop()
		// Estimate after Stop: marshaling reads the per-signature counters
		// the (now quiescent) avoidance and monitor goroutines mutate.
		perSig := 0
		if l := rt.History().Len(); l > 0 {
			perSig = rt.History().SizeOnDiskEstimate() / l
		}

		delta := int64(heapAfter) - int64(heapBefore)
		if delta < 0 {
			delta = 0
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(n),
			fmt.Sprintf("%.1f MB", float64(delta)/(1<<20)),
			itoa(stacks),
			itoa(perSig),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: 6-25 MB (pthreads) / 79-127 MB (Java) across 2-1024 threads; history 200-1000 bytes/signature; CPU overhead ~0",
	)
	return rep
}

func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
