// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§7) on the simulated substrates, and
// renders the same rows/series the paper reports. cmd/dimmunix-bench is
// the CLI front end; EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Scale selects quick (CI-sized) or full (paper-sized) runs.
type Scale struct {
	Full bool
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) Report
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Real deadlock bugs avoided (Table 1)", Table1},
		{"table2", "Java JDK invitations to deadlock avoided (Table 2)", Table2},
		{"fig4", "End-to-end overhead on real-system simulators (Figure 4)", Fig4},
		{"fig5", "Lock throughput vs number of threads (Figure 5)", Fig5},
		{"fig6", "Lock throughput vs delta-in / delta-out (Figure 6)", Fig6},
		{"fig7", "Lock throughput vs history size and matching depth (Figure 7)", Fig7},
		{"fig8", "Overhead breakdown (Figure 8)", Fig8},
		{"fig9", "False-positive overhead vs matching depth + gate/ghost locks (Figure 9)", Fig9},
		{"resources", "Resource utilization (Section 7.4)", Resources},
		{"ablation", "Design ablations (DESIGN.md section 5)", Ablation},
	}
}

// ByID finds an experiment.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			return &e
		}
	}
	return nil
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func utoa(v uint64) string { return fmt.Sprintf("%d", v) }

// overhead computes (base-x)/base as a fraction (negative = speedup).
func overhead(base, x float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - x) / base
}
