package bench

import (
	"fmt"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/serverapp"
	"dimmunix/internal/workload"
)

// Fig4 measures end-to-end overhead on the simulated JBoss/RUBiS and
// MySQL/JDBCBench servers as history size grows (32..128 signatures).
func Fig4(s Scale) Report {
	rep := Report{
		ID:     "fig4",
		Title:  "End-to-end overhead vs history size (server simulators)",
		Header: []string{"Profile", "Signatures", "Base req/s", "Dimmunix req/s", "Overhead", "Avg lat base", "Avg lat dmx"},
	}
	dur := 400 * time.Millisecond
	if s.Full {
		dur = 3 * time.Second
	}
	profiles := []serverapp.Profile{serverapp.RUBiS(), serverapp.JDBCBench()}
	if !s.Full {
		// Quick mode trims the pools so CI-sized machines finish fast.
		profiles[0].Workers = 64
		profiles[1].Workers = 16
	}
	for _, p := range profiles {
		// Baseline: Dimmunix off (best of two runs).
		baseRT := core.MustNew(core.Config{Mode: core.ModeOff})
		baseSrv := serverapp.New(baseRT, p)
		base := baseSrv.Run(dur)
		if again := baseSrv.Run(dur); again.Throughput > base.Throughput {
			base = again
		}
		baseRT.Stop()

		for _, h := range []int{32, 64, 128} {
			rt := core.MustNew(core.Config{Tau: 50 * time.Millisecond, MaxThreads: p.Workers + 8})
			srv := serverapp.New(rt, p)
			srv.Run(dur / 4) // warmup: populate the stack interner
			hist, err := workload.SynthesizeHistory(rt.CapturedStacks(), h, 2, 4, int64(h))
			if err == nil {
				rt.History().Merge(hist)
			}
			res := srv.Run(dur)
			if again := srv.Run(dur); again.Throughput > res.Throughput {
				res = again
			}
			rt.Stop()
			rep.Rows = append(rep.Rows, []string{
				p.Name, itoa(h),
				f1(base.Throughput), f1(res.Throughput),
				pct(overhead(base.Throughput, res.Throughput)),
				base.AvgLatency.Round(time.Microsecond).String(),
				res.AvgLatency.Round(time.Microsecond).String(),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: max overhead 2.6% (JBoss/RUBiS) and 7.17% (MySQL/JDBCBench) for up to 128 signatures",
		"paper: no statistically meaningful drop in response time",
	)
	return rep
}

// Fig5 sweeps the thread count at 64 sigs, siglen 2, 8 locks, din=1us,
// dout=1ms, reporting lock throughput and yields/s.
func Fig5(s Scale) Report {
	rep := Report{
		ID:     "fig5",
		Title:  "Lock throughput vs number of threads (64 sigs, 8 locks, din=1us, dout=1ms)",
		Header: []string{"Threads", "Baseline ops/s", "Dimmunix ops/s", "Overhead", "Yields/s"},
	}
	threads := []int{2, 8, 32, 64, 128}
	if s.Full {
		threads = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	}
	for _, n := range threads {
		base := runPoint(s, pointOpts{threads: n, din: time.Microsecond, dout: time.Millisecond, mode: core.ModeOff, reps: 2})
		dmx := runPoint(s, pointOpts{threads: n, din: time.Microsecond, dout: time.Millisecond, hist: 64, reps: 2})
		rep.Rows = append(rep.Rows, []string{
			itoa(n),
			f1(base.Throughput), f1(dmx.Throughput),
			pct(overhead(base.Throughput, dmx.Throughput)),
			f1(dmx.YieldsPerS),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper (8-core): overhead 0.6-4.5% (pthreads), 6.5-17.5% (Java); throughput roughly flat to 1024 threads",
	)
	return rep
}

// Fig6 sweeps din (dout=1ms) and dout (din=1us) at 64 threads.
func Fig6(s Scale) Report {
	rep := Report{
		ID:     "fig6",
		Title:  "Lock throughput vs din and dout (64 threads, 8 locks, 64 sigs)",
		Header: []string{"Sweep", "Delay", "Baseline ops/ms", "Dimmunix ops/ms", "Overhead"},
	}
	deltas := []time.Duration{0, time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond}
	for _, d := range deltas {
		base := runPoint(s, pointOpts{din: d, dout: time.Millisecond, mode: core.ModeOff})
		dmx := runPoint(s, pointOpts{din: d, dout: time.Millisecond, hist: 64})
		rep.Rows = append(rep.Rows, []string{
			"din (dout=1ms)", d.String(),
			f2(base.Throughput / 1000), f2(dmx.Throughput / 1000),
			pct(overhead(base.Throughput, dmx.Throughput)),
		})
	}
	for _, d := range deltas {
		base := runPoint(s, pointOpts{din: time.Microsecond, dout: d, mode: core.ModeOff})
		dmx := runPoint(s, pointOpts{din: time.Microsecond, dout: d, hist: 64})
		rep.Rows = append(rep.Rows, []string{
			"dout (din=1us)", d.String(),
			f2(base.Throughput / 1000), f2(dmx.Throughput / 1000),
			pct(overhead(base.Throughput, dmx.Throughput)),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: overhead highest at din=dout=0 and absorbed as the delays grow (>=1ms inter-critical-section gaps => modest overhead)",
	)
	return rep
}

// Fig7 sweeps history size 2..256 at matching depths 4 and 8.
func Fig7(s Scale) Report {
	rep := Report{
		ID:     "fig7",
		Title:  "Lock throughput vs history size and matching depth (64 threads, 8 locks, din=1us, dout=1ms)",
		Header: []string{"Signatures", "Baseline ops/s", "Depth4 ops/s", "Depth8 ops/s", "Ovh d4", "Ovh d8"},
	}
	sizes := []int{2, 16, 64, 256}
	if s.Full {
		sizes = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	base := runPoint(s, pointOpts{din: time.Microsecond, dout: time.Millisecond, mode: core.ModeOff, reps: 2})
	for _, h := range sizes {
		d4 := runPoint(s, pointOpts{din: time.Microsecond, dout: time.Millisecond, hist: h, sigDepth: 4, reps: 2})
		d8 := runPoint(s, pointOpts{din: time.Microsecond, dout: time.Millisecond, hist: h, sigDepth: 8, reps: 2})
		rep.Rows = append(rep.Rows, []string{
			itoa(h),
			f1(base.Throughput), f1(d4.Throughput), f1(d8.Throughput),
			pct(overhead(base.Throughput, d4.Throughput)),
			pct(overhead(base.Throughput, d8.Throughput)),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: overhead roughly constant across history sizes 2-256 and depths 4 vs 8 (history search is a negligible overhead component)",
	)
	return rep
}

// Fig8 breaks the overhead down: instrumentation only, + data-structure
// updates, full avoidance.
func Fig8(s Scale) Report {
	rep := Report{
		ID:     "fig8",
		Title:  "Breakdown of overhead (64 sigs, 8 locks, din=1us, dout=1ms)",
		Header: []string{"Threads", "Instrumentation", "+Data structures", "Full avoidance"},
	}
	threads := []int{8, 32, 64, 128}
	if s.Full {
		threads = []int{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	for _, n := range threads {
		base := runPoint(s, pointOpts{threads: n, din: time.Microsecond, dout: time.Millisecond, mode: core.ModeOff, reps: 2})
		inst := runPoint(s, pointOpts{threads: n, din: time.Microsecond, dout: time.Millisecond, mode: core.ModeInstrument, reps: 2})
		ds := runPoint(s, pointOpts{threads: n, din: time.Microsecond, dout: time.Millisecond, mode: core.ModeDataStructs, reps: 2})
		full := runPoint(s, pointOpts{threads: n, din: time.Microsecond, dout: time.Millisecond, hist: 64, reps: 2})
		rep.Rows = append(rep.Rows, []string{
			itoa(n),
			pct(overhead(base.Throughput, inst.Throughput)),
			pct(overhead(base.Throughput, ds.Throughput)),
			pct(overhead(base.Throughput, full.Throughput)),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper (Java): the bulk of the overhead comes from data-structure lookups and updates",
	)
	return rep
}

// Fig9 sweeps the matching depth 1..10 with a depth-10 probe classifying
// avoidances as false positives, and compares against the gate-lock and
// ghost-lock baselines (din=dout=1ms, 64 threads, 8 locks, 64 sigs).
func Fig9(s Scale) Report {
	rep := Report{
		ID:     "fig9",
		Title:  "False-positive overhead vs matching depth; gate/ghost-lock comparison",
		Header: []string{"Config", "ops/s", "Overhead vs base", "Yields", "Probe FPs"},
	}
	const D = 10
	o := func(depth int) pointOpts {
		return pointOpts{
			din: time.Millisecond, dout: time.Millisecond,
			hist: 64, sigDepth: depth, probeDepth: D,
			seed: 17,
		}
	}
	base := runPoint(s, pointOpts{din: time.Millisecond, dout: time.Millisecond, mode: core.ModeOff})
	// Dimmunix's own overhead, without any false positives: decisions
	// ignored (§7.3 methodology).
	noFP := runPoint(s, pointOpts{din: time.Millisecond, dout: time.Millisecond, hist: 64, sigDepth: 1, ignore: true})
	rep.Rows = append(rep.Rows, []string{"baseline (off)", f1(base.Throughput), "-", "-", "-"})
	rep.Rows = append(rep.Rows, []string{"dimmunix, decisions ignored", f1(noFP.Throughput), pct(overhead(base.Throughput, noFP.Throughput)), "-", "-"})

	depths := []int{1, 2, 4, 8, 10}
	if s.Full {
		depths = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	for _, k := range depths {
		res := runPoint(s, o(k))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("dimmunix, match depth %d", k),
			f1(res.Throughput),
			pct(overhead(base.Throughput, res.Throughput)),
			utoa(res.Yields),
			utoa(res.ProbeFPs),
		})
	}

	gops, gates := runGateLockPoint(s)
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("gate locks (%d gates)", gates.Gates),
		f1(gops),
		pct(overhead(base.Throughput, gops)),
		utoa(gates.Contended), "-",
	})
	hops, ghosts := runGhostLockPoint(s)
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("ghost locks (%d ghosts)", ghosts.Ghosts),
		f1(hops),
		pct(overhead(base.Throughput, hops)),
		utoa(ghosts.Contended), "-",
	})
	rep.Notes = append(rep.Notes,
		"paper: FP overhead decreases as depth grows (61.2% at depth 1, 4.6% at depth>=8, ~0 FPs at depth 10)",
		"paper: gate locks needed 45 gates for 64 deadlocks and cost ~70% overhead with 561,627 FPs — similar to Dimmunix at depth 1",
	)
	return rep
}
