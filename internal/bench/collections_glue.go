package bench

import (
	"errors"
	"time"

	"dimmunix/internal/collections"
	"dimmunix/internal/core"
)

// invitation adapts collections.Invitation to the report drivers.
type invitation struct {
	name string
	run  func(rt *core.Runtime, hold time.Duration) [2]error
}

func collectionsInvitations() []invitation {
	var out []invitation
	for _, inv := range collections.Invitations() {
		inv := inv
		out = append(out, invitation{
			name: inv.Name,
			run: func(rt *core.Runtime, hold time.Duration) [2]error {
				e1, e2 := inv.Run(rt, hold)
				return [2]error{e1, e2}
			},
		})
	}
	return out
}

func anyRecovered(errs [2]error) bool {
	for _, e := range errs {
		if errors.Is(e, core.ErrDeadlockRecovered) {
			return true
		}
	}
	return false
}
