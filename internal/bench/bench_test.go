package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment drivers are exercised end-to-end in quick mode; the
// assertions check structure and the coarse shapes the paper reports.

func render(t *testing.T, r Report) string {
	t.Helper()
	var buf bytes.Buffer
	r.Render(&buf)
	return buf.String()
}

func TestAllRegistry(t *testing.T) {
	exps := All()
	if len(exps) != 10 {
		t.Fatalf("got %d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if ByID(e.ID) == nil {
			t.Errorf("ByID(%s) = nil", e.ID)
		}
	}
	if ByID("nope") != nil {
		t.Error("ByID(unknown) must be nil")
	}
}

func TestReportRender(t *testing.T) {
	r := Report{
		ID: "x", Title: "t",
		Header: []string{"A", "LongColumn"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := render(t, r)
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: hello") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestFig5Shape(t *testing.T) {
	rep := Fig5(Scale{})
	if len(rep.Rows) < 3 {
		t.Fatalf("fig5 rows = %d", len(rep.Rows))
	}
	out := render(t, rep)
	if !strings.Contains(out, "Threads") {
		t.Error("missing header")
	}
}

func TestFig7Shape(t *testing.T) {
	rep := Fig7(Scale{})
	if len(rep.Rows) != 4 {
		t.Fatalf("fig7 rows = %d", len(rep.Rows))
	}
}

func TestFig9Shape(t *testing.T) {
	rep := Fig9(Scale{})
	// baseline + ignored + depths + gate + ghost
	if len(rep.Rows) < 7 {
		t.Fatalf("fig9 rows = %d\n%s", len(rep.Rows), render(t, rep))
	}
}

func TestTable2Quick(t *testing.T) {
	rep := Table2(Scale{})
	if len(rep.Rows) != 5 {
		t.Fatalf("table2 rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[1] != "deadlocked+recovered" {
			t.Errorf("%s: first run = %q, want deadlock", row[0], row[1])
		}
		if !strings.HasPrefix(row[2], "3/3") {
			t.Errorf("%s: immunized runs = %q", row[0], row[2])
		}
	}
}

func TestResourcesQuick(t *testing.T) {
	rep := Resources(Scale{})
	if len(rep.Rows) != 3 {
		t.Fatalf("resources rows = %d", len(rep.Rows))
	}
}

func TestOverheadHelper(t *testing.T) {
	if overhead(100, 90) != 0.1 {
		t.Error("overhead(100,90) != 0.1")
	}
	if overhead(0, 10) != 0 {
		t.Error("overhead with zero base must be 0")
	}
	if overhead(100, 110) >= 0 {
		t.Error("speedup must be negative overhead")
	}
}
