package bench

import (
	"time"

	"dimmunix/internal/core"
)

// Ablation benchmarks the DESIGN.md §5 design choices: the avoidance
// guard implementation (§5.6's Peterson filter vs sync.Mutex vs TAS
// spin), implicit goroutine-ID thread resolution vs explicit Thread
// handles, and dynamic calibration on/off.
func Ablation(s Scale) Report {
	rep := Report{
		ID:     "ablation",
		Title:  "Design ablations",
		Header: []string{"Variant", "ops/s", "Overhead vs best"},
	}

	// Guard choice at 32 threads, 64 signatures.
	type variant struct {
		name  string
		guard core.GuardKind
	}
	variants := []variant{
		{"guard=sync.Mutex", core.GuardMutex},
		{"guard=TAS spin", core.GuardSpin},
		{"guard=Peterson filter", core.GuardFilter},
	}
	results := make([]float64, len(variants))
	best := 0.0
	for i, v := range variants {
		res := runPoint(s, pointOpts{
			threads: 32, din: time.Microsecond, dout: time.Millisecond,
			hist: 64, guard: v.guard,
		})
		results[i] = res.Throughput
		if res.Throughput > best {
			best = res.Throughput
		}
	}
	for i, v := range variants {
		rep.Rows = append(rep.Rows, []string{v.name, f1(results[i]), pct(overhead(best, results[i]))})
	}

	// Implicit (goroutine-id parse) vs explicit thread identity.
	imp, exp := threadIDCost()
	rep.Rows = append(rep.Rows, []string{"thread-ID: explicit handle", f1(exp), pct(overhead(max2(imp, exp), exp))})
	rep.Rows = append(rep.Rows, []string{"thread-ID: implicit (gid parse)", f1(imp), pct(overhead(max2(imp, exp), imp))})

	// Calibration on vs off at depth-diverse history.
	calOff := runPoint(s, pointOpts{din: time.Microsecond, dout: time.Millisecond, hist: 64})
	calOn := runPoint(s, pointOpts{din: time.Microsecond, dout: time.Millisecond, hist: 64, calibrate: true})
	b := max2(calOff.Throughput, calOn.Throughput)
	rep.Rows = append(rep.Rows, []string{"calibration off", f1(calOff.Throughput), pct(overhead(b, calOff.Throughput))})
	rep.Rows = append(rep.Rows, []string{"calibration on", f1(calOn.Throughput), pct(overhead(b, calOn.Throughput))})

	rep.Notes = append(rep.Notes,
		"guard: the filter lock is the paper's lock-free construction; sync.Mutex is the practical default",
		"thread-ID: ops/s of a single uncontended lock/unlock loop through each identity path",
	)
	return rep
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// threadIDCost measures raw lock/unlock throughput through the implicit
// and explicit identity APIs (single thread, uncontended).
func threadIDCost() (implicitOps, explicitOps float64) {
	rt := core.MustNew(core.Config{Tau: 100 * time.Millisecond})
	defer rt.Stop()
	m := rt.NewMutex()

	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		_ = m.Lock()
		_ = m.Unlock()
	}
	implicitOps = iters / time.Since(start).Seconds()

	th := rt.RegisterThread("bench")
	defer th.Close()
	start = time.Now()
	for i := 0; i < iters; i++ {
		_ = m.LockT(th)
		_ = m.UnlockT(th)
	}
	explicitOps = iters / time.Since(start).Seconds()
	return implicitOps, explicitOps
}
