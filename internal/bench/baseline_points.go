package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/gatelock"
	"dimmunix/internal/ghostlock"
)

// The comparator workloads mirror the Fig 9 microbenchmark point
// (64 threads, 8 locks, din=dout=1ms) on raw sync.Mutex, guarded by gate
// locks / ghost locks built from the same number of "discovered"
// deadlocks (64).

const (
	cmpThreads = 64
	cmpLocks   = 8
	cmpSites   = 4
	cmpHist    = 64
)

func cmpDur(s Scale) time.Duration {
	if s.Full {
		return 2 * time.Second
	}
	return 250 * time.Millisecond
}

func cmpSpin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func runGateLockPoint(s Scale) (float64, gatelock.Stats) {
	mgr := gatelock.NewManager()
	sites := make([]gatelock.Site, cmpSites)
	for i := range sites {
		sites[i] = gatelock.Site{Func: "workload.lockOp", File: "workload.go", Line: 100 + i}
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < cmpHist; i++ {
		a, b := sites[rng.Intn(cmpSites)], sites[rng.Intn(cmpSites)]
		mgr.AddDeadlock([]gatelock.Site{a, b})
	}

	locks := make([]sync.Mutex, cmpLocks)
	var ops atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cmpThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(t)))
			for !stop.Load() {
				site := sites[r.Intn(cmpSites)]
				tok := mgr.Enter(site)
				m := &locks[r.Intn(cmpLocks)]
				m.Lock()
				cmpSpin(time.Millisecond)
				m.Unlock()
				mgr.Exit(tok)
				ops.Add(1)
				cmpSpin(time.Millisecond)
			}
		}(t)
	}
	time.Sleep(cmpDur(s))
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(ops.Load()) / elapsed.Seconds(), mgr.Stats()
}

func runGhostLockPoint(s Scale) (float64, ghostlock.Stats) {
	mgr := ghostlock.NewManager()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < cmpHist; i++ {
		a := uint64(rng.Intn(cmpLocks) + 1)
		b := uint64(rng.Intn(cmpLocks) + 1)
		if a == b {
			continue
		}
		mgr.AddDeadlock([]uint64{a, b})
	}

	locks := make([]sync.Mutex, cmpLocks)
	var ops atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cmpThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(t)))
			tid := int64(t + 1)
			for !stop.Load() {
				id := uint64(r.Intn(cmpLocks) + 1)
				mgr.BeforeLock(tid, id)
				m := &locks[id-1]
				m.Lock()
				cmpSpin(time.Millisecond)
				m.Unlock()
				mgr.AfterUnlock(tid, id)
				ops.Add(1)
				cmpSpin(time.Millisecond)
			}
		}(t)
	}
	time.Sleep(cmpDur(s))
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(ops.Load()) / elapsed.Seconds(), mgr.Stats()
}
