package bench

import (
	"fmt"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/monitor"
	"dimmunix/internal/simapp"
)

func recoveringRuntime(cfg core.Config) *core.Runtime {
	var rt *core.Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) {
		rt.AbortThreads(info.ThreadIDs...)
	}
	if cfg.Tau == 0 {
		cfg.Tau = 5 * time.Millisecond
	}
	if cfg.MaxYield == 0 {
		cfg.MaxYield = 10 * time.Second
	}
	rt = core.MustNew(cfg)
	return rt
}

const exploitHold = 50 * time.Millisecond

// Table1 reproduces §7.1.1: every bug is run in three configurations —
// (1) detection-only baseline, (2) full instrumentation with yield
// decisions ignored (proving the instrumentation's timing changes do not
// mask the bug), (3) full Dimmunix with the signatures in history — and
// the immunized runs' yields are reported min/avg/max.
func Table1(s Scale) Report {
	trials := 3
	if s.Full {
		trials = 100
	}
	rep := Report{
		ID:     "table1",
		Title:  "Real deadlock bugs avoided by Dimmunix",
		Header: []string{"System", "Bug#", "cfg1:dlk", "cfg2:dlk", "cfg3:ok", "Yields min", "avg", "max", "Patterns", "Depth"},
	}
	for _, bug := range simapp.Bugs() {
		// Config 1: detection-only (stands in for the unmodified
		// program; the monitor only provides the recovery our harness
		// needs to run repeated trials).
		cfg1Deadlocks := 0
		{
			rt := recoveringRuntime(core.Config{Mode: core.ModeDataStructs})
			app := bug.New(rt)
			for i := 0; i < trials; i++ {
				if simapp.Deadlocked(app.Exploit(exploitHold)) {
					cfg1Deadlocks++
				}
			}
			rt.Stop()
		}
		// Config 2: full Dimmunix, decisions ignored.
		cfg2Deadlocks := 0
		{
			rt := recoveringRuntime(core.Config{IgnoreDecisions: true})
			app := bug.New(rt)
			for i := 0; i < trials; i++ {
				if simapp.Deadlocked(app.Exploit(exploitHold)) {
					cfg2Deadlocks++
				}
			}
			rt.Stop()
		}
		// Config 3: full Dimmunix; contract each pattern once, then run
		// the immunized trials.
		rt := recoveringRuntime(core.Config{})
		app := bug.New(rt)
		for i := 0; i < bug.ReproduciblePatterns+6; i++ {
			errs := app.Exploit(exploitHold)
			if rt.History().Len() >= bug.ReproduciblePatterns && simapp.Clean(errs) {
				break
			}
		}
		completed := 0
		minY, maxY, sumY := int64(1<<62), int64(0), int64(0)
		for i := 0; i < trials; i++ {
			before := rt.Stats().Yields
			errs := app.Exploit(exploitHold)
			y := int64(rt.Stats().Yields - before)
			if simapp.Clean(errs) {
				completed++
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			sumY += y
		}
		patterns := rt.History().Len()
		depth := measuredDepths(rt)
		rt.Stop()

		rep.Rows = append(rep.Rows, []string{
			bug.System, bug.BugID,
			fmt.Sprintf("%d/%d", cfg1Deadlocks, trials),
			fmt.Sprintf("%d/%d", cfg2Deadlocks, trials),
			fmt.Sprintf("%d/%d", completed, trials),
			fmt.Sprintf("%d", minY),
			fmt.Sprintf("%d", sumY/int64(trials)),
			fmt.Sprintf("%d", maxY),
			itoa(patterns),
			depth,
		})
	}
	rep.Notes = append(rep.Notes,
		"cfg1 = detection-only baseline, cfg2 = instrumented with decisions ignored, cfg3 = full Dimmunix (immunized)",
		"paper: every cfg1/cfg2 trial deadlocks, every cfg3 trial completes; loop-driven bugs (ActiveMQ) yield many times per trial",
	)
	return rep
}

// measuredDepths renders the captured signature stack depths.
func measuredDepths(rt *core.Runtime) string {
	out := ""
	for i, sig := range rt.History().Snapshot() {
		if i > 0 {
			out += ","
		}
		minLen := 1 << 30
		for _, st := range sig.Stacks {
			if len(st) < minLen {
				minLen = len(st)
			}
		}
		out += itoa(minLen)
	}
	return out
}

// Table2 reproduces §7.1.2: the five JDK invitations, each deadlocking
// once and then avoided.
func Table2(s Scale) Report {
	immunizedRuns := 3
	if s.Full {
		immunizedRuns = 100
	}
	rep := Report{
		ID:     "table2",
		Title:  "Java JDK 1.6-style deadlock invitations avoided",
		Header: []string{"Class", "First run", "Immunized runs OK", "Yields"},
	}
	for _, inv := range collectionsInvitations() {
		rt := recoveringRuntime(core.Config{MatchDepth: 2})
		first := "completed"
		errs := inv.run(rt, exploitHold)
		if anyRecovered(errs) {
			first = "deadlocked+recovered"
		}
		before := rt.Stats().Yields
		ok := 0
		for i := 0; i < immunizedRuns; i++ {
			errs := inv.run(rt, 10*time.Millisecond)
			if errs[0] == nil && errs[1] == nil {
				ok++
			}
		}
		yields := rt.Stats().Yields - before
		rt.Stop()
		rep.Rows = append(rep.Rows, []string{
			inv.name, first,
			fmt.Sprintf("%d/%d", ok, immunizedRuns),
			utoa(yields),
		})
	}
	rep.Notes = append(rep.Notes, "paper: all five invitations successfully avoided by Dimmunix")
	return rep
}
