package bench

import (
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/monitor"
	"dimmunix/internal/workload"
)

// pointOpts configures one microbenchmark measurement point.
type pointOpts struct {
	threads int
	locks   int
	din     time.Duration
	dout    time.Duration

	hist     int // synthesized signatures (0 = empty history)
	sigLen   int
	sigDepth int

	mode       core.Mode
	ignore     bool
	probeDepth int
	guard      core.GuardKind
	calibrate  bool

	dur    time.Duration
	warmup time.Duration
	seed   int64
	// reps re-runs the measurement and keeps the best throughput,
	// suppressing one-off scheduler glitches on small machines.
	reps int
}

func (o *pointOpts) fill(s Scale) {
	if o.locks == 0 {
		o.locks = 8
	}
	if o.threads == 0 {
		o.threads = 64
	}
	if o.sigLen == 0 {
		o.sigLen = 2
	}
	if o.sigDepth == 0 {
		o.sigDepth = 4
	}
	if o.dur == 0 {
		if s.Full {
			o.dur = 2 * time.Second
		} else {
			o.dur = 250 * time.Millisecond
		}
	}
	if o.warmup == 0 {
		if s.Full {
			o.warmup = 400 * time.Millisecond
		} else {
			o.warmup = 150 * time.Millisecond
		}
	}
	if o.seed == 0 {
		o.seed = 1
	}
}

// runPoint builds a runtime + workload for the options and measures one
// run (best of o.reps).
func runPoint(s Scale, o pointOpts) workload.Result {
	o.fill(s)
	if o.reps <= 0 {
		o.reps = 1
	}
	best := runPointOnce(s, o)
	for i := 1; i < o.reps; i++ {
		if r := runPointOnce(s, o); r.Throughput > best.Throughput {
			best = r
		}
	}
	return best
}

func runPointOnce(s Scale, o pointOpts) workload.Result {
	var rt *core.Runtime
	cfg := core.Config{
		Tau:        50 * time.Millisecond,
		Mode:       o.mode,
		MatchDepth: o.sigDepth,
		// StackDepth 12 comfortably covers the paper's D=10 probing.
		StackDepth:      12,
		IgnoreDecisions: o.ignore,
		ProbeDepth:      o.probeDepth,
		Guard:           o.guard,
		Calibrate:       o.calibrate,
		MaxThreads:      o.threads + 8,
		MaxYield:        50 * time.Millisecond,
		OnDeadlock: func(info monitor.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
		},
	}
	rt = core.MustNew(cfg)
	defer rt.Stop()

	r := workload.NewRunner(rt, workload.Config{
		Threads:  o.threads,
		Locks:    o.locks,
		DIn:      o.din,
		DOut:     o.dout,
		Duration: o.dur,
		Seed:     o.seed,
	})
	if o.hist > 0 && o.mode != core.ModeOff {
		r.Warmup(o.warmup)
		hist, err := workload.SynthesizeHistory(rt.CapturedStacks(), o.hist, o.sigLen, o.sigDepth, o.seed+99)
		if err == nil {
			rt.History().Merge(hist)
		}
	} else if o.mode != core.ModeOff {
		r.Warmup(o.warmup / 3)
	}
	return r.Run()
}
