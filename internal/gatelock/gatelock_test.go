package gatelock

import (
	"sync"
	"testing"

	"dimmunix/internal/stack"
)

func site(fn string, line int) Site { return Site{Func: fn, File: "f.go", Line: line} }

func TestSiteOf(t *testing.T) {
	s := stack.Stack{{Func: "a", File: "x.go", Line: 3}, {Func: "b", File: "y.go", Line: 9}}
	got := SiteOf(s)
	if got != (Site{Func: "a", File: "x.go", Line: 3}) {
		t.Errorf("SiteOf = %+v", got)
	}
	if SiteOf(nil) != (Site{}) {
		t.Error("empty stack must give zero site")
	}
}

func TestAddDeadlockDedup(t *testing.T) {
	m := NewManager()
	a, b := site("f", 1), site("g", 2)
	if !m.AddDeadlock([]Site{a, b}) {
		t.Fatal("first add must create a gate")
	}
	if m.AddDeadlock([]Site{b, a}) {
		t.Fatal("same site set in different order must reuse the gate")
	}
	if m.NumGates() != 1 {
		t.Errorf("gates = %d", m.NumGates())
	}
	// Different set => new gate, sharing site a.
	if !m.AddDeadlock([]Site{a, site("h", 3)}) {
		t.Fatal("different set must create a new gate")
	}
	if m.NumGates() != 2 {
		t.Errorf("gates = %d", m.NumGates())
	}
}

func TestEnterUngatedSiteIsFree(t *testing.T) {
	m := NewManager()
	tok := m.Enter(site("free", 1))
	if len(tok.gates) != 0 {
		t.Error("ungated site must return empty token")
	}
	m.Exit(tok) // must not panic
}

func TestGateSerializesBothSites(t *testing.T) {
	m := NewManager()
	a, b := site("f", 1), site("g", 2)
	m.AddDeadlock([]Site{a, b})

	var inside, max int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := a
			if i%2 == 1 {
				s = b
			}
			for j := 0; j < 200; j++ {
				tok := m.Enter(s)
				mu.Lock()
				inside++
				if inside > max {
					max = inside
				}
				mu.Unlock()
				mu.Lock()
				inside--
				mu.Unlock()
				m.Exit(tok)
			}
		}(i)
	}
	wg.Wait()
	if max > 1 {
		t.Errorf("gate admitted %d threads concurrently", max)
	}
	st := m.Stats()
	if st.Acquires != 8*200 {
		t.Errorf("acquires = %d", st.Acquires)
	}
	// Contention is timing-dependent; just exercise the counter path.
	t.Logf("contended gate acquisitions: %d", st.Contended)
}

func TestMultipleGatesAcquiredInOrder(t *testing.T) {
	m := NewManager()
	a := site("f", 1)
	m.AddDeadlock([]Site{a, site("g", 2)})
	m.AddDeadlock([]Site{a, site("h", 3)})

	// Site a is guarded by two gates; concurrent entries must not
	// deadlock (canonical ordering) and must fully serialize.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				tok := m.Enter(a)
				m.Exit(tok)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkEnterExitGated(b *testing.B) {
	m := NewManager()
	a := site("f", 1)
	m.AddDeadlock([]Site{a, site("g", 2)})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tok := m.Enter(a)
			m.Exit(tok)
		}
	})
}

func BenchmarkEnterExitUngated(b *testing.B) {
	m := NewManager()
	a := site("f", 1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tok := m.Enter(a)
			m.Exit(tok)
		}
	})
}
