// Package gatelock implements the gate-lock deadlock-healing baseline of
// Nir-Buchbinder, Tzoref and Ur ("Deadlocks: from exhibiting to healing",
// RV 2008) — reference [17] of the Dimmunix paper and its §7.3 comparator.
//
// When a deadlock is discovered, the code blocks involved (identified by
// their lock-acquisition code positions, WITHOUT call-stack context) are
// wrapped in one shared "gate lock" that must be acquired prior to
// entering any of the blocks. This serializes all executions through those
// positions — including interleavings that could never deadlock, which is
// why the approach exhibits over an order of magnitude more false
// positives than Dimmunix (§7.3: every call to update() is serialized,
// even {[s1,s3],[s1,s3]}).
package gatelock

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"dimmunix/internal/stack"
)

// Site is a lock-acquisition code position: just the innermost frame, no
// call-stack context ("[17] does not use call stacks").
type Site struct {
	Func string
	File string
	Line int
}

// SiteOf extracts the position from a captured stack.
func SiteOf(s stack.Stack) Site {
	if len(s) == 0 {
		return Site{}
	}
	return Site{Func: s[0].Func, File: s[0].File, Line: s[0].Line}
}

func (s Site) String() string {
	return s.Func + "@" + s.File + ":" + strconv.Itoa(s.Line)
}

// gate is one gate lock with a stable ordering key.
type gate struct {
	key string
	mu  sync.Mutex
	// contended counts acquisitions that had to wait — the avoidance
	// (and false-positive) events of this baseline.
	contended uint64
	acquires  uint64
}

// Manager owns the gates and the site index.
type Manager struct {
	mu     sync.Mutex
	gates  map[string]*gate // key = canonical site-set
	bySite map[Site][]*gate
}

// NewManager returns an empty manager (no deadlocks known: no gates).
func NewManager() *Manager {
	return &Manager{
		gates:  make(map[string]*gate),
		bySite: make(map[Site][]*gate),
	}
}

// AddDeadlock registers a discovered deadlock over the given positions and
// creates (or reuses) its gate lock. It reports whether a new gate was
// created; deadlocks whose position set was already gated share the gate,
// which is how 64 history deadlocks required only 45 gates in §7.3.
func (m *Manager) AddDeadlock(sites []Site) bool {
	keys := make([]string, len(sites))
	for i, s := range sites {
		keys[i] = s.String()
	}
	sort.Strings(keys)
	key := strings.Join(keys, "|")

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.gates[key]; ok {
		return false
	}
	g := &gate{key: key}
	m.gates[key] = g
	seen := make(map[Site]bool)
	for _, s := range sites {
		if seen[s] {
			continue
		}
		seen[s] = true
		m.bySite[s] = append(m.bySite[s], g)
	}
	return true
}

// NumGates returns the number of gate locks.
func (m *Manager) NumGates() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.gates)
}

// Token is the set of gates held for one guarded block entry.
type Token struct {
	gates []*gate
}

// Enter acquires every gate guarding the site, in canonical order (gates
// are totally ordered by key, so gate acquisition itself cannot deadlock).
// The returned token must be released with Exit when the thread leaves the
// guarded block (i.e. releases the application lock it acquired at the
// site). Sites with no gates return an empty token at near-zero cost.
func (m *Manager) Enter(site Site) Token {
	m.mu.Lock()
	gs := m.bySite[site]
	m.mu.Unlock()
	if len(gs) == 0 {
		return Token{}
	}
	ordered := make([]*gate, len(gs))
	copy(ordered, gs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
	for _, g := range ordered {
		if !g.mu.TryLock() {
			m.noteContended(g)
			g.mu.Lock()
		}
		m.noteAcquire(g)
	}
	return Token{gates: ordered}
}

func (m *Manager) noteContended(g *gate) {
	m.mu.Lock()
	g.contended++
	m.mu.Unlock()
}

func (m *Manager) noteAcquire(g *gate) {
	m.mu.Lock()
	g.acquires++
	m.mu.Unlock()
}

// Exit releases the token's gates.
func (m *Manager) Exit(t Token) {
	for i := len(t.gates) - 1; i >= 0; i-- {
		t.gates[i].mu.Unlock()
	}
}

// Stats aggregates gate counters.
type Stats struct {
	Gates     int
	Acquires  uint64
	Contended uint64
}

// Stats returns the aggregate counters; Contended approximates the
// baseline's avoidance/false-positive events (threads serialized that
// were not about to deadlock).
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Gates: len(m.gates)}
	for _, g := range m.gates {
		st.Acquires += g.acquires
		st.Contended += g.contended
	}
	return st
}
