package dimmunix

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// ErrInitialized reports that the process-wide default Runtime already
// exists (created by an earlier Init or lazily by a zero-value mutex's
// first Lock). Call Shutdown first to replace it.
var ErrInitialized = errors.New("dimmunix: default runtime already initialized")

var (
	defaultMu sync.Mutex
	defaultRT atomic.Pointer[core.Runtime]

	// defaultGen counts default-runtime transitions (installs and
	// shutdowns). Zero-value Mutex/RWMutex bindings are stamped with the
	// generation they bound under; a stale stamp makes the next lock
	// operation rebind to the current default runtime — the mechanism
	// that lets Shutdown→Init rebind already-bound drop-in mutexes
	// instead of leaving them attached to a stopped runtime.
	defaultGen atomic.Uint64
)

// generation returns the current default-runtime generation.
func generation() uint64 { return defaultGen.Load() }

// Init creates the process-wide default Runtime that zero-value Mutex and
// RWMutex values bind to on first Lock. Configuration is read from the
// DIMMUNIX_* environment first, then refined by opts (options take
// precedence over the environment). Init is safe to call concurrently;
// exactly one caller creates the runtime and the rest get ErrInitialized,
// as does any Init after the default runtime exists.
//
// Programs that never call Init still get immunity: the first Lock
// lazily initializes the default Runtime from the environment alone.
func Init(opts ...Option) error {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRT.Load() != nil {
		return ErrInitialized
	}
	cfg, err := configFromEnv()
	if err != nil {
		return err
	}
	for _, o := range opts {
		o(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		return err
	}
	defaultRT.Store(rt)
	defaultGen.Add(1)
	return nil
}

// Default returns the process-wide default Runtime, lazily creating it
// from the DIMMUNIX_* environment if neither Init nor a zero-value mutex
// has done so yet. It panics if the environment is malformed or the
// history file cannot be read — the drop-in Lock path has no error
// return; call Init at startup to observe those errors instead.
func Default() *Runtime {
	if rt := defaultRT.Load(); rt != nil {
		return rt
	}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if rt := defaultRT.Load(); rt != nil {
		return rt
	}
	cfg, err := configFromEnv()
	if err == nil {
		var rt *Runtime
		rt, err = core.New(cfg)
		if err == nil {
			defaultRT.Store(rt)
			defaultGen.Add(1)
			return rt
		}
	}
	panic(fmt.Sprintf("dimmunix: default runtime init failed: %v", err))
}

// Shutdown stops the default Runtime — a final monitor pass, then the
// history is saved — and clears it, so a later Init (or first Lock)
// creates a fresh one. Bound mutexes are detached lazily: the generation
// stamp on each binding goes stale, and a mutex's next lock operation
// retires the old instance once it is observed free (retirement is
// atomic with the raw lock grant, so acquirers racing the transition
// bounce internally and retry on the fresh binding — mutual exclusion is
// preserved even under lock traffic concurrent with Shutdown→Init). A
// mutex held across Shutdown keeps unlocking through its old runtime and
// rebinds once free. Operations in flight during the transition may
// briefly go unmonitored (their events reach the stopped runtime);
// quiesce first if complete monitoring coverage matters. No-op when no
// default runtime exists.
func Shutdown() error {
	defaultMu.Lock()
	rt := defaultRT.Swap(nil)
	if rt != nil {
		defaultGen.Add(1)
	}
	defaultMu.Unlock()
	if rt == nil {
		return nil
	}
	return rt.Stop()
}

// Environment variables read by Init and the lazy Default initializer.
// Options passed to Init take precedence over all of them.
//
//	DIMMUNIX_HISTORY           history file path ("" = in-memory)
//	DIMMUNIX_HISTORY_SYNC      shared store spec: file path, directory of
//	                           per-process journals, or http:// URL of a
//	                           dimmunix-hist serve daemon; enables the
//	                           cross-process sync loop
//	DIMMUNIX_SYNC_INTERVAL     sync cadence, Go duration (default 2s with
//	                           a shared store; negative disables the loop)
//	DIMMUNIX_SYNC_TOKEN        shared-secret push token for http:// stores
//	                           (must match the daemon's --token)
//	DIMMUNIX_SHUTDOWN_TIMEOUT  bound on Stop's final store publish, Go
//	                           duration (default 1s; negative = unbounded)
//	DIMMUNIX_TAU               monitor period, Go duration ("100ms")
//	DIMMUNIX_MODE              off | instrument | datastructs | full
//	DIMMUNIX_IMMUNITY          weak | strong
//	DIMMUNIX_GUARD             mutex | spin | filter
//	DIMMUNIX_RECOVERY          abort | off
//	DIMMUNIX_MATCH_DEPTH       int
//	DIMMUNIX_MAX_YIELD         Go duration
//	DIMMUNIX_MAX_THREADS       int
//	DIMMUNIX_STACK_DEPTH       int
//	DIMMUNIX_CALIBRATE         bool
//	DIMMUNIX_DISCARD_OBSOLETE  bool
//	DIMMUNIX_GUARD_SHARDS      int (avoidance guard shard count)
//	DIMMUNIX_THREAD_TTL        Go duration (idle implicit-thread pruning;
//	                           negative disables)
//	DIMMUNIX_FASTPATH          on | off (safe-stack lock-free bypass)
//	DIMMUNIX_EVENT_BUFFER      int (observability ring / subscriber
//	                           channel capacity; default 256)
//	DIMMUNIX_EVENT_BATCH       int (per-thread monitor-publication batch
//	                           size; default 64, <= 1 disables batching)
//	DIMMUNIX_TRACE             trace-mode journal path ("" = no tracing);
//	                           records every acquisition event for
//	                           offline prediction (dimmunix-predict)
//	DIMMUNIX_TRACE_MAX_BYTES   int; journal size bound before rotation
//	                           (default 64 MiB; negative = unbounded)
func configFromEnv() (Config, error) {
	var cfg Config
	cfg.HistoryPath = os.Getenv("DIMMUNIX_HISTORY")
	cfg.HistorySync = os.Getenv("DIMMUNIX_HISTORY_SYNC")

	if err := envDuration("DIMMUNIX_SYNC_INTERVAL", &cfg.SyncInterval); err != nil {
		return cfg, err
	}
	if err := envDuration("DIMMUNIX_SHUTDOWN_TIMEOUT", &cfg.ShutdownTimeout); err != nil {
		return cfg, err
	}
	if err := envDuration("DIMMUNIX_TAU", &cfg.Tau); err != nil {
		return cfg, err
	}
	if err := envDuration("DIMMUNIX_MAX_YIELD", &cfg.MaxYield); err != nil {
		return cfg, err
	}
	if err := envInt("DIMMUNIX_MATCH_DEPTH", &cfg.MatchDepth); err != nil {
		return cfg, err
	}
	if err := envInt("DIMMUNIX_MAX_THREADS", &cfg.MaxThreads); err != nil {
		return cfg, err
	}
	if err := envInt("DIMMUNIX_STACK_DEPTH", &cfg.StackDepth); err != nil {
		return cfg, err
	}
	if err := envBool("DIMMUNIX_CALIBRATE", &cfg.Calibrate); err != nil {
		return cfg, err
	}
	if err := envBool("DIMMUNIX_DISCARD_OBSOLETE", &cfg.DiscardObsolete); err != nil {
		return cfg, err
	}
	if err := envInt("DIMMUNIX_GUARD_SHARDS", &cfg.GuardShards); err != nil {
		return cfg, err
	}
	if err := envDuration("DIMMUNIX_THREAD_TTL", &cfg.ThreadTTL); err != nil {
		return cfg, err
	}
	if err := envInt("DIMMUNIX_EVENT_BUFFER", &cfg.EventBuffer); err != nil {
		return cfg, err
	}
	if err := envInt("DIMMUNIX_EVENT_BATCH", &cfg.EventBatch); err != nil {
		return cfg, err
	}
	cfg.TracePath = os.Getenv("DIMMUNIX_TRACE")
	if err := envInt64("DIMMUNIX_TRACE_MAX_BYTES", &cfg.TraceMaxBytes); err != nil {
		return cfg, err
	}
	if v := os.Getenv("DIMMUNIX_FASTPATH"); v != "" {
		switch strings.ToLower(v) {
		case "on":
			cfg.DisableFastPath = false
		case "off":
			cfg.DisableFastPath = true
		default:
			return cfg, fmt.Errorf("dimmunix: DIMMUNIX_FASTPATH=%q (want on|off)", v)
		}
	}

	if v := os.Getenv("DIMMUNIX_MODE"); v != "" {
		switch strings.ToLower(v) {
		case "off":
			cfg.Mode = ModeOff
		case "instrument":
			cfg.Mode = ModeInstrument
		case "datastructs":
			cfg.Mode = ModeDataStructs
		case "full":
			cfg.Mode = ModeFull
		default:
			return cfg, fmt.Errorf("dimmunix: DIMMUNIX_MODE=%q (want off|instrument|datastructs|full)", v)
		}
	}
	if v := os.Getenv("DIMMUNIX_IMMUNITY"); v != "" {
		switch strings.ToLower(v) {
		case "weak":
			cfg.Immunity = WeakImmunity
		case "strong":
			cfg.Immunity = StrongImmunity
		default:
			return cfg, fmt.Errorf("dimmunix: DIMMUNIX_IMMUNITY=%q (want weak|strong)", v)
		}
	}
	if v := os.Getenv("DIMMUNIX_GUARD"); v != "" {
		switch strings.ToLower(v) {
		case "mutex":
			cfg.Guard = GuardMutex
		case "spin":
			cfg.Guard = GuardSpin
		case "filter":
			cfg.Guard = GuardFilter
		default:
			return cfg, fmt.Errorf("dimmunix: DIMMUNIX_GUARD=%q (want mutex|spin|filter)", v)
		}
	}
	if v := os.Getenv("DIMMUNIX_RECOVERY"); v != "" {
		switch strings.ToLower(v) {
		case "abort":
			cfg.RecoverAborts = true
		case "off":
			cfg.RecoverAborts = false
		default:
			return cfg, fmt.Errorf("dimmunix: DIMMUNIX_RECOVERY=%q (want abort|off)", v)
		}
	}
	return cfg, nil
}

func envDuration(name string, dst *time.Duration) error {
	v := os.Getenv(name)
	if v == "" {
		return nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("dimmunix: %s=%q: %v", name, v, err)
	}
	*dst = d
	return nil
}

func envInt(name string, dst *int) error {
	v := os.Getenv(name)
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("dimmunix: %s=%q: %v", name, v, err)
	}
	*dst = n
	return nil
}

func envInt64(name string, dst *int64) error {
	v := os.Getenv(name)
	if v == "" {
		return nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return fmt.Errorf("dimmunix: %s=%q: %v", name, v, err)
	}
	*dst = n
	return nil
}

func envBool(name string, dst *bool) error {
	v := os.Getenv(name)
	if v == "" {
		return nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return fmt.Errorf("dimmunix: %s=%q: %v", name, v, err)
	}
	*dst = b
	return nil
}
