// alloc_test.go pins the allocation budget of the lock paths. The
// uncontended fast tier is the product's hot path and must stay at zero
// allocations per operation (amortized: the per-thread event buffer
// publishes one pooled carrier to the monitor queue every EventBatch
// operations, so the per-op average stays well under one). The guarded
// tier symbolizes stacks per operation when the fast path is disabled;
// its budget is bounded, not zero.
//
// testing.AllocsPerRun counts process-wide mallocs, so the runtimes here
// are configured with an effectively-idle monitor (huge Tau) and pruning
// off, leaving the lock path as the only allocator.
package dimmunix_test

import (
	"testing"
	"time"

	"dimmunix"
)

func allocRT(t *testing.T, cfg dimmunix.Config) *dimmunix.Runtime {
	t.Helper()
	cfg.Tau = time.Hour // no monitor passes during measurement
	cfg.ThreadTTL = -1  // no pruner sweeps
	rt := dimmunix.MustNew(cfg)
	t.Cleanup(func() { rt.Stop() })
	return rt
}

// TestFastPathLockUnlockZeroAllocs: uncontended fast-tier Mutex
// Lock/Unlock allocates nothing per operation.
func TestFastPathLockUnlockZeroAllocs(t *testing.T) {
	rt := allocRT(t, dimmunix.Config{Mode: dimmunix.ModeFull})
	th := rt.RegisterThread("alloc")
	defer th.Close()
	m := rt.NewMutex()
	// Warm the per-goroutine classification table, the PC cache, the
	// interner, and the thread's first event-buffer slab.
	for i := 0; i < 200; i++ {
		if err := m.LockT(th); err != nil {
			t.Fatal(err)
		}
		_ = m.UnlockT(th)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := m.LockT(th); err != nil {
			t.Fatal(err)
		}
		_ = m.UnlockT(th)
	})
	if avg >= 1 {
		t.Fatalf("fast-tier Lock/Unlock allocates: %.3f allocs/op (want < 1, i.e. 0 at -benchmem resolution)", avg)
	}
	if rt.Stats().FastGos == 0 {
		t.Fatal("measurement never took the fast tier")
	}
}

// TestFastPathRWMutexReadZeroAllocs: uncontended fast-tier RWMutex
// RLock/RUnlock allocates nothing per operation.
func TestFastPathRWMutexReadZeroAllocs(t *testing.T) {
	rt := allocRT(t, dimmunix.Config{Mode: dimmunix.ModeFull})
	th := rt.RegisterThread("alloc-rw")
	defer th.Close()
	rw := rt.NewRWMutex()
	for i := 0; i < 200; i++ {
		if err := rw.RLockT(th); err != nil {
			t.Fatal(err)
		}
		_ = rw.RUnlockT(th)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := rw.RLockT(th); err != nil {
			t.Fatal(err)
		}
		_ = rw.RUnlockT(th)
	})
	if avg >= 1 {
		t.Fatalf("fast-tier RLock/RUnlock allocates: %.3f allocs/op (want < 1)", avg)
	}
	if rt.Stats().FastGos == 0 {
		t.Fatal("measurement never took the fast tier")
	}
}

// TestGuardedPathAllocBudget bounds the guarded tier: with the fast path
// disabled every operation runs the full §5.4 protocol and — without the
// PC cache — symbolizes its stack. That costs allocations by design; this
// test only pins the budget so regressions surface.
func TestGuardedPathAllocBudget(t *testing.T) {
	rt := allocRT(t, dimmunix.Config{Mode: dimmunix.ModeFull, DisableFastPath: true})
	th := rt.RegisterThread("alloc-guarded")
	defer th.Close()
	m := rt.NewMutex()
	for i := 0; i < 200; i++ {
		if err := m.LockT(th); err != nil {
			t.Fatal(err)
		}
		_ = m.UnlockT(th)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if err := m.LockT(th); err != nil {
			t.Fatal(err)
		}
		_ = m.UnlockT(th)
	})
	const budget = 12
	if avg > budget {
		t.Fatalf("guarded Lock/Unlock allocates %.1f allocs/op (budget %d)", avg, budget)
	}
}
