// Command dimmunix-vet is the static-analysis multichecker for code
// using dimmunix (and plain sync) locks. It drives the internal/lint
// analyzers over the packages matched by the given patterns:
//
//	lockorder        whole-program lock-order inversions (potential deadlocks)
//	chancycle        mixed channel/lock wait cycles (lock held across a blocking op)
//	dimmunixcopylock by-value copies of lock types
//	unlockcheck      leaked/double unlocks, ignored lock-call results
//	condloop         Cond.Wait outside a condition loop
//
// Findings print in the go-vet file:line form and exit status 1, so a
// CI step is just `dimmunix-vet ./...`. Deliberate sites (deadlock
// reproductions, teaching examples) are annotated in source with
// `//lint:ignore <analyzer> reason`.
//
// The -emit mode closes the loop with the fleet: every confirmed
// lock-order cycle is lowered into a calibration-armed format-v2
// signature (Source="static", runtime-style file:line pseudo-frames)
// and pushed into the history store file at the given path — ready for
// `dimmunix-hist -f <path> push http://daemon` to inoculate every
// process against a deadlock no process has ever executed.
//
// Usage:
//
//	dimmunix-vet ./...                         # report findings, exit 1 if any
//	dimmunix-vet -tests ./...                  # include in-package _test.go files
//	dimmunix-vet -only lockorder ./internal/...
//	dimmunix-vet -emit /tmp/static.json ./...  # lower cycles into a pushable store
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dimmunix/internal/histstore"
	"dimmunix/internal/lint"
)

var (
	dir     = flag.String("dir", "", "working directory for package loading (default: current)")
	tests   = flag.Bool("tests", false, "analyze in-package _test.go files too")
	only    = flag.String("only", "", "comma-separated analyzer subset (default: all)")
	emit    = flag.String("emit", "", "lower confirmed lockorder cycles into a history store file at this path")
	depth   = flag.Int("depth", 0, "emitted signature matching depth (default: stack length, capped at 4)")
	calib   = flag.Bool("calib", true, "arm depth calibration on emitted signatures")
	callDep = flag.Int("call-depth", 0, "lockorder call-graph closure depth (default 3)")
	ctxFlag = flag.Int("ctx", 1, "levels of allocation-site context on field lock identities (0 disables)")
	quiet   = flag.Bool("q", false, "suppress the summary line")
)

var all = []*lint.Analyzer{lint.LockOrder, lint.ChanCycle, lint.CopyLock, lint.UnlockCheck, lint.CondLoop}

func main() {
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatal(fmt.Errorf("unknown analyzer %q", name))
			}
			analyzers = append(analyzers, a)
		}
	}

	lint.DefaultLockOrderOptions = lint.LockOrderOptions{MaxCallDepth: *callDep, NoCtx: *ctxFlag == 0}

	prog, err := lint.Load(lint.Options{Dir: *dir, Tests: *tests}, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "dimmunix-vet: warning: %v\n", terr)
		}
	}

	if *emit != "" {
		emitCycles(prog)
		return
	}

	diags, errs := lint.RunAnalyzers(prog, analyzers)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "dimmunix-vet:", e)
	}
	for _, d := range diags {
		fmt.Println(lint.Format(prog.Fset, d))
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "dimmunix-vet: %d package(s), %d finding(s)\n",
			len(prog.Packages), len(diags))
	}
	if len(diags) > 0 || len(errs) > 0 {
		os.Exit(1)
	}
}

// emitCycles runs lockorder and chancycle alone (ignore directives do
// not apply: a deliberate reproduction is exactly what the fleet wants
// immunity to) and pushes the lowered signatures into the store file.
func emitCycles(prog *lint.Program) {
	opts := lint.LockOrderOptions{MaxCallDepth: *callDep, NoCtx: *ctxFlag == 0}
	res := lint.AnalyzeLockOrder(prog, opts)
	chres := lint.AnalyzeChanCycle(prog, opts)
	cycles := append(append([]lint.ConfirmedCycle{}, res.Cycles...), chres.Cycles...)
	h := lint.EmitHistoryCycles(cycles, lint.EmitOptions{Depth: *depth, Calibrate: *calib})
	if h.Len() == 0 {
		fatal(fmt.Errorf("no lock-order or channel/lock cycles confirmed; nothing to emit (candidates: %d, guarded: %d, sequential: %d, rw: %d)",
			res.Candidates, res.SuppressedGuard, res.SuppressedSeq, res.SuppressedRW))
	}
	st := histstore.NewFileStore(*emit)
	if _, err := st.Push(context.Background(), h); err != nil {
		fatal(err)
	}
	fmt.Printf("emitted %d static signature(s) from %d confirmed cycle(s) (%d lockorder, %d chancycle) -> %s\n",
		h.Len(), len(cycles), len(res.Cycles), len(chres.Cycles), *emit)
	for _, c := range cycles {
		fmt.Printf("  cycle: %s -> %s\n", strings.Join(c.Locks, " -> "), c.Locks[0])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimmunix-vet:", err)
	os.Exit(2)
}
