// Command dimmunix-benchdiff compares a `go test -bench` run against the
// committed medians in BENCH_fastpath.json and gates fast-path allocation
// regressions in CI. It is a dependency-free stand-in for benchstat
// (which the CI image does not carry): it parses the standard benchmark
// output format, reduces repeated runs (-count=N) to per-benchmark
// medians, prints an old-vs-new delta table, and — with -gate-allocs —
// exits nonzero if any fast-tier benchmark's median allocs/op is above
// zero, the regression the zero-allocation fast path must never reintroduce.
//
// -gate-latency <pct> additionally fails the run when a fast-tier
// benchmark's median ns/op regresses more than pct percent over the
// committed baseline median — the latency counterpart of the alloc
// gate. Benchmarks absent from the baseline are skipped (new benchmarks
// gate from their first committed baseline, not their first run).
//
// Usage:
//
//	dimmunix-benchdiff -bench bench-ci.txt [-baseline BENCH_fastpath.json] [-gate-allocs] [-gate-latency 25]
//
// -bench may be "-" to read the benchmark output from stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// fastTierPattern selects the benchmarks the allocation gate applies to:
// the uncontended fast tier, empty or populated history. The guarded
// baselines (DisableFastPath) symbolize stacks per operation by design
// and are exempt.
var fastTierPattern = regexp.MustCompile(`^BenchmarkLockUncontendedParallel(Populated)?/`)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkLockUncontendedParallel/g8-4   1879161   587.2 ns/op   22 B/op   0 allocs/op
//
// The trailing -P GOMAXPROCS suffix is optional (absent at GOMAXPROCS=1).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

type runs struct {
	ns     []float64
	bytes  []float64
	allocs []float64
}

type baselineFile struct {
	Benchmarks []struct {
		Name           string  `json:"name"`
		NsPerOpMedian  float64 `json:"ns_per_op_median"`
		AllocsPerOpMed float64 `json:"allocs_per_op_median"`
	} `json:"benchmarks"`
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func parse(r io.Reader) (map[string]*runs, []string, error) {
	byName := make(map[string]*runs)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		rs := byName[name]
		if rs == nil {
			rs = &runs{}
			byName[name] = rs
			order = append(order, name)
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		rs.ns = append(rs.ns, ns)
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			rs.bytes = append(rs.bytes, b)
		}
		if m[4] != "" {
			a, _ := strconv.ParseFloat(m[4], 64)
			rs.allocs = append(rs.allocs, a)
		}
	}
	return byName, order, sc.Err()
}

func main() {
	benchPath := flag.String("bench", "-", "benchmark output file (- = stdin)")
	basePath := flag.String("baseline", "", "BENCH_fastpath.json to diff medians against")
	gate := flag.Bool("gate-allocs", false, "exit 1 if a fast-tier benchmark's median allocs/op > 0")
	gateLatency := flag.Float64("gate-latency", 0, "exit 1 if a fast-tier benchmark's median ns/op regresses more than this percent over the baseline (0 = off)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	byName, order, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(byName) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines found")
		os.Exit(2)
	}

	old := map[string]float64{}
	oldAllocs := map[string]float64{}
	if *basePath != "" {
		data, err := os.ReadFile(*basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		var base baselineFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: parse baseline:", err)
			os.Exit(2)
		}
		for _, b := range base.Benchmarks {
			old[b.Name] = b.NsPerOpMedian
			oldAllocs[b.Name] = b.AllocsPerOpMed
		}
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-55s %12s %12s %9s %9s\n", "benchmark (medians)", "old ns/op", "new ns/op", "delta", "allocs")
	for _, name := range order {
		rs := byName[name]
		newNs := median(rs.ns)
		newAllocs := median(rs.allocs)
		oldNs, hasOld := old[name]
		delta := "n/a"
		oldCol := "n/a"
		if hasOld && oldNs > 0 {
			oldCol = fmt.Sprintf("%.1f", oldNs)
			delta = fmt.Sprintf("%+.1f%%", (newNs-oldNs)/oldNs*100)
		}
		fmt.Fprintf(w, "%-55s %12s %12.1f %9s %9.0f\n", name, oldCol, newNs, delta, newAllocs)
	}
	w.Flush()

	if *gate {
		failed := false
		for name, rs := range byName {
			if !fastTierPattern.MatchString(name) {
				continue
			}
			if len(rs.allocs) == 0 {
				fmt.Fprintf(os.Stderr, "benchdiff: %s has no allocs/op column (run with -benchmem)\n", name)
				failed = true
				continue
			}
			if a := median(rs.allocs); a > 0 {
				fmt.Fprintf(os.Stderr, "benchdiff: ALLOC REGRESSION: %s median %.0f allocs/op (fast tier must be 0)\n", name, a)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("alloc gate: fast-tier benchmarks at 0 allocs/op")
	}

	if *gateLatency > 0 {
		if *basePath == "" {
			fmt.Fprintln(os.Stderr, "benchdiff: -gate-latency needs -baseline")
			os.Exit(2)
		}
		failed := false
		gated := 0
		for name, rs := range byName {
			if !fastTierPattern.MatchString(name) {
				continue
			}
			oldNs, hasOld := old[name]
			if !hasOld || oldNs <= 0 {
				continue
			}
			gated++
			newNs := median(rs.ns)
			if pct := (newNs - oldNs) / oldNs * 100; pct > *gateLatency {
				fmt.Fprintf(os.Stderr, "benchdiff: LATENCY REGRESSION: %s median %.1f ns/op vs baseline %.1f (%+.1f%%, limit %+.1f%%)\n",
					name, newNs, oldNs, pct, *gateLatency)
				failed = true
			}
		}
		if gated == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: -gate-latency matched no fast-tier benchmark present in the baseline")
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("latency gate: %d fast-tier benchmark(s) within %+.1f%% of baseline\n", gated, *gateLatency)
	}
}
