// Command dimmunix-fleet is the two-process shared-immunity smoke
// worker: role "a" triggers a lock-order-inversion deadlock once (it is
// recovered, its signature archived and pushed to the shared store);
// role "b" waits for the signature to arrive through the store's sync
// loop, then runs the exact same locking pattern and must complete
// cleanly — deadlock immunity acquired without ever deadlocking itself,
// the paper's §8 fleet scenario. Role "c" is the outage drill: it runs
// the same exploit against an unreachable store and must still recover
// locally AND stop within the shutdown budget — distributing immunity
// may never make the protected application worse.
//
// Roles "canary" and "avoid" are the predictive-immunity drill: the
// canary runs the SAME inversion code serialized — no contention, no
// deadlock — with trace mode on (DIMMUNIX_TRACE), leaving a journal for
// dimmunix-predict to analyze and push; the avoid worker then converges
// on the predicted signature and must survive the real interleaving on
// its first encounter with zero deadlocks detected — immunity acquired
// before any process in the fleet ever hung.
//
// Usage:
//
//	dimmunix-fleet -store http://127.0.0.1:7676 -role a
//	dimmunix-fleet -store http://127.0.0.1:7676 -role b [-wait 15s]
//	dimmunix-fleet -store http://127.0.0.1:7676 -role c        # daemon dead
//	DIMMUNIX_TRACE=/tmp/canary.trace dimmunix-fleet -store ... -role canary
//	dimmunix-fleet -store http://127.0.0.1:7676 -role avoid    # after predict push
//
// All roles exit 0 on success and 1 on a property violation, so the CI
// smoke steps can assert the fleet-immunity and bounded-shutdown
// properties end to end.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"flag"

	"dimmunix"
	"dimmunix/internal/signature"
)

var (
	storeSpec  = flag.String("store", "", "shared history store (file, dir, or http:// daemon)")
	role       = flag.String("role", "", "a = hit the deadlock once; b = converge and avoid it; c = outage drill; canary = record trace, no deadlock; avoid = converge on predicted signature and dodge first encounter")
	wait       = flag.Duration("wait", 15*time.Second, "roles b/avoid: how long to wait for convergence")
	hold       = flag.Duration("hold", 150*time.Millisecond, "timing window between the nested acquisitions")
	budget     = flag.Duration("budget", time.Second, "role c: configured shutdown timeout (Stop must return within 2x)")
	provenance = flag.String("provenance", signature.SourcePredicted, "role avoid: required Source of the converged signature (predicted, static)")
	statsOut   = flag.String("stats-out", "", "write the final runtime stats snapshot as JSON to this file (CI artifact)")
	metricsOut = flag.String("metrics-out", "", "write the final Prometheus-text metrics snapshot to this file (CI artifact)")
	debugAddr  = flag.String("debug", "", "serve dimmunix.DebugHandler on this address for the run (e.g. 127.0.0.1:7700)")
)

func main() {
	flag.Parse()
	switch *role {
	case "a", "b", "c", "canary", "avoid":
	default:
		*storeSpec = ""
	}
	if *storeSpec == "" {
		fmt.Fprintln(os.Stderr, "usage: dimmunix-fleet -store <spec> -role a|b|c|canary|avoid")
		os.Exit(2)
	}

	store, err := dimmunix.OpenHistoryStore(*storeSpec)
	if err != nil {
		fatal(err)
	}
	cfg := dimmunix.Config{
		HistoryStore:  store,
		SyncInterval:  100 * time.Millisecond,
		Tau:           5 * time.Millisecond,
		MatchDepth:    2,
		RecoverAborts: true,
	}
	if *role == "c" {
		cfg.ShutdownTimeout = *budget
		cfg.SyncRoundTimeout = *budget
	}
	if *role == "canary" {
		// The canary's whole point is the journal: trace mode is not
		// optional for it, so read the env knob explicitly and refuse to
		// run blind.
		cfg.TracePath = os.Getenv("DIMMUNIX_TRACE")
		if cfg.TracePath == "" {
			fatal(fmt.Errorf("role canary: set DIMMUNIX_TRACE to the journal path"))
		}
	}
	rt, err := dimmunix.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer rt.Stop()

	if *debugAddr != "" {
		// The worker's own observability endpoint: the same DebugHandler
		// a production service would mount on its operations port.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/statusz", dimmunix.DebugHandler(rt))
		go http.Serve(ln, mux)
		fmt.Printf("role %s: /statusz on %s\n", *role, ln.Addr())
	}
	if *statsOut != "" {
		defer writeStats(rt, *statsOut)
	}
	if *metricsOut != "" {
		defer writeMetricsFile(rt, *metricsOut)
	}

	switch *role {
	case "a":
		errs := exercise(rt, *hold, false)
		if !deadlocked(errs) {
			fatal(fmt.Errorf("role a: expected the exploit to deadlock, got %v", errs))
		}
		if err := rt.SyncNow(context.Background()); err != nil {
			fatal(err)
		}
		fmt.Printf("role a: deadlocked once, archived and pushed %d signature(s)\n",
			rt.History().Len())
	case "b":
		deadline := time.Now().Add(*wait)
		for rt.History().Len() == 0 {
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("role b: no signature arrived within %v", *wait))
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Printf("role b: converged to %d signature(s), danger epoch %d\n",
			rt.History().Len(), rt.History().Danger().Epoch())
		errs := exercise(rt, *hold, false)
		if deadlocked(errs) {
			fatal(fmt.Errorf("role b: deadlocked despite the shared signature"))
		}
		for _, e := range errs {
			if e != nil {
				fatal(fmt.Errorf("role b: worker failed: %v", e))
			}
		}
		// The signature usually arrives via the startup store load (role
		// b starts after role a pushed); the sync loop must still be
		// demonstrably healthy — rounds advancing without errors is the
		// liveness signal /statusz exposes to operators.
		stats := rt.Stats()
		if stats.SyncRounds == 0 {
			fatal(fmt.Errorf("role b: no sync rounds ran despite convergence"))
		}
		fmt.Printf("role b: clean run, %d yields over %d sync rounds (%d pulls, %d pushes) — immunity acquired without deadlocking\n",
			stats.Yields, stats.SyncRounds, stats.SyncPulls, stats.SyncPushes)
	case "c":
		// The store is expected to be dead (the CI step killed the
		// daemon). Local immunity must be unimpaired: the deadlock is
		// still detected and recovered, its signature archived locally.
		errs := exercise(rt, *hold, false)
		if !deadlocked(errs) {
			fatal(fmt.Errorf("role c: expected the exploit to deadlock locally, got %v", errs))
		}
		if rt.History().Len() == 0 {
			fatal(fmt.Errorf("role c: signature not archived locally during the outage"))
		}
		// And shutdown must be bounded: the exit publish is abandoned
		// within the budget instead of stalling the process. 2x covers
		// the publish plus scheduling slack, mirroring the in-tree test.
		start := time.Now()
		err := rt.Stop()
		elapsed := time.Since(start)
		if elapsed > 2*(*budget) {
			fatal(fmt.Errorf("role c: Stop took %v, budget 2x%v", elapsed, *budget))
		}
		fmt.Printf("role c: outage survived — recovered locally, Stop returned in %v (publish err: %v)\n",
			elapsed.Round(time.Millisecond), err)
	case "canary":
		// Serialized schedule through the exact same call sites as the
		// exploit: no contention, no deadlock — only a trace journal that
		// proves the inversion for the offline predictor.
		errs := exercise(rt, *hold, true)
		for _, e := range errs {
			if e != nil {
				fatal(fmt.Errorf("role canary: worker failed: %v", e))
			}
		}
		if n := rt.MonitorCounters().DeadlocksDetected.Load(); n != 0 {
			fatal(fmt.Errorf("role canary: detected %d deadlocks; the schedule must be disjoint", n))
		}
		if err := rt.Stop(); err != nil {
			fatal(fmt.Errorf("role canary: stop: %v", err))
		}
		stats := rt.Stats()
		if stats.TraceRecords == 0 {
			fatal(fmt.Errorf("role canary: trace mode recorded nothing"))
		}
		fmt.Printf("role canary: clean serialized run, %d trace records (%d dropped) in %s\n",
			stats.TraceRecords, stats.TraceDropped, cfg.TracePath)
	case "avoid":
		// Converge on the predicted (or statically emitted) signature —
		// pushed by dimmunix-predict or dimmunix-vet, not by any
		// deadlocked process — then survive the real interleaving on the
		// very first encounter.
		deadline := time.Now().Add(*wait)
		for rt.History().Len() == 0 {
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("role avoid: no %s signature arrived within %v", *provenance, *wait))
			}
			time.Sleep(10 * time.Millisecond)
		}
		matched := 0
		for _, s := range rt.HistorySummary().Signatures {
			if s.Source == *provenance {
				matched++
			}
		}
		if matched == 0 {
			fatal(fmt.Errorf("role avoid: converged, but no entry carries %q provenance", *provenance))
		}
		fmt.Printf("role avoid: converged to %d signature(s) (%d %s), danger epoch %d\n",
			rt.History().Len(), matched, *provenance, rt.History().Danger().Epoch())
		errs := exercise(rt, *hold, false)
		for _, e := range errs {
			if e != nil {
				fatal(fmt.Errorf("role avoid: worker failed: %v", e))
			}
		}
		stats := rt.Stats()
		if stats.DeadlocksDetected != 0 {
			fatal(fmt.Errorf("role avoid: %d deadlocks detected — prediction did not inoculate", stats.DeadlocksDetected))
		}
		if stats.Yields == 0 {
			fatal(fmt.Errorf("role avoid: clean run but no avoidance yields — the pattern was not exercised"))
		}
		fmt.Printf("role avoid: first encounter avoided — %d yields, 0 deadlocks, immunity acquired before any process ever hung\n",
			stats.Yields)
	}
}

// exercise runs the canonical AB/BA inversion: two workers each nest a
// pair of locks in opposite order, holding the first for the timing
// window. Identical code in every role means identical call stacks, so
// a signature archived by role a — or predicted from role canary's
// trace — matches the requests of roles b and avoid. With serialize
// set, the first worker finishes before the second starts: same code,
// same stacks, zero contention — the canary schedule.
func exercise(rt *dimmunix.Runtime, hold time.Duration, serialize bool) []error {
	a, b := rt.NewMutex(), rt.NewMutex()
	errs := make([]error, 2)
	done := make(chan struct{}, 2)
	run := func(i int, first, second *dimmunix.CoreMutex) {
		th := rt.RegisterThread(fmt.Sprintf("w%d", i))
		defer th.Close()
		defer func() { done <- struct{}{} }()
		errs[i] = nest(th, first, second, hold)
	}
	go run(0, a, b)
	if serialize {
		<-done
	}
	go run(1, b, a)
	<-done
	if !serialize {
		<-done
	}
	return errs
}

func nest(th *dimmunix.Thread, outer, inner *dimmunix.CoreMutex, hold time.Duration) error {
	if err := outer.LockT(th); err != nil {
		return err
	}
	time.Sleep(hold)
	//lint:ignore lockorder deliberate inversion: the fleet drill deadlock the canary inoculates against
	if err := inner.LockT(th); err != nil {
		_ = outer.UnlockT(th)
		return err
	}
	_ = inner.UnlockT(th)
	_ = outer.UnlockT(th)
	return nil
}

func deadlocked(errs []error) bool {
	for _, err := range errs {
		if err == dimmunix.ErrDeadlockRecovered {
			return true
		}
	}
	return false
}

// writeStats dumps the runtime's counter snapshot as JSON — the CI
// fleet e2e uploads it as an artifact.
func writeStats(rt *dimmunix.Runtime, path string) {
	data, err := json.MarshalIndent(map[string]any{
		"role":  *role,
		"stats": rt.Stats(),
	}, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dimmunix-fleet: stats-out:", err)
	}
}

func writeMetricsFile(rt *dimmunix.Runtime, path string) {
	var buf bytes.Buffer
	dimmunix.WriteMetrics(&buf, rt.Stats())
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dimmunix-fleet: metrics-out:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimmunix-fleet:", err)
	os.Exit(1)
}
