// Command dimmunix-hist inspects and maintains Dimmunix history files:
// listing and showing signatures, disabling/enabling them (§5.7), merging
// vendor-distributed histories (§8's proactive immunization), and porting
// signatures across code revisions (§8) with sigport rules.
//
// Usage:
//
//	dimmunix-hist -f hist.json list
//	dimmunix-hist -f hist.json show <sig-id>
//	dimmunix-hist -f hist.json disable <sig-id>
//	dimmunix-hist -f hist.json enable <sig-id>
//	dimmunix-hist -f hist.json remove <sig-id>
//	dimmunix-hist -f hist.json merge <other.json>
//	dimmunix-hist -f hist.json port <rules.txt> -o ported.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
)

func main() {
	var (
		file = flag.String("f", "dimmunix-history.json", "history file")
		out  = flag.String("o", "", "output file (port); defaults to -f")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "missing command: list | show | disable | enable | remove | merge | port")
		os.Exit(2)
	}

	h, err := signature.Load(*file)
	if err != nil {
		fatal(err)
	}

	switch args[0] {
	case "list":
		fmt.Printf("%d signatures in %s\n", h.Len(), *file)
		for _, sig := range h.Snapshot() {
			state := ""
			if sig.Disabled {
				state = " [disabled]"
			}
			fmt.Printf("  %s  %-10s depth=%d stacks=%d avoided=%d aborts=%d%s\n",
				sig.ID, sig.Kind, sig.Depth, sig.Size(), sig.AvoidCount, sig.AbortCount, state)
		}
	case "show":
		sig := h.Get(arg(args, 1))
		if sig == nil {
			fatal(fmt.Errorf("no signature %q", arg(args, 1)))
		}
		fmt.Printf("%s (%s, depth %d, created %s)\n", sig.ID, sig.Kind, sig.Depth,
			time.Unix(sig.CreatedUnix, 0).Format(time.RFC3339))
		fmt.Printf("avoided=%d aborts=%d fp=%d tp=%d disabled=%v\n",
			sig.AvoidCount, sig.AbortCount, sig.FPCount, sig.TPCount, sig.Disabled)
		for i, s := range sig.Stacks {
			fmt.Printf("stack %d:\n", i)
			for _, f := range s {
				fmt.Printf("    %s\n", f)
			}
		}
	case "disable", "enable":
		id := arg(args, 1)
		if !h.SetDisabled(id, args[0] == "disable") {
			fatal(fmt.Errorf("no signature %q", id))
		}
		save(h)
		fmt.Printf("%sd %s\n", args[0], id)
	case "remove":
		id := arg(args, 1)
		if !h.Remove(id) {
			fatal(fmt.Errorf("no signature %q", id))
		}
		save(h)
		fmt.Printf("removed %s\n", id)
	case "merge":
		other, err := signature.Load(arg(args, 1))
		if err != nil {
			fatal(err)
		}
		n := h.Merge(other)
		save(h)
		fmt.Printf("merged %d new signatures (total %d)\n", n, h.Len())
	case "port":
		f, err := os.Open(arg(args, 1))
		if err != nil {
			fatal(err)
		}
		rules, err := sigport.ParseRules(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		ported, st := sigport.Port(h, rules)
		dst := *out
		if dst == "" {
			dst = *file
		}
		if err := ported.SaveTo(dst); err != nil {
			fatal(err)
		}
		fmt.Printf("ported %d signatures (%d frames rewritten, %d dropped) -> %s\n",
			st.Ported, st.Frames, st.Dropped, dst)
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

func arg(args []string, i int) string {
	if i >= len(args) {
		fatal(fmt.Errorf("missing argument"))
	}
	return args[i]
}

func save(h *signature.History) {
	if err := h.Save(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimmunix-hist:", err)
	os.Exit(1)
}
