// Command dimmunix-hist inspects, maintains, and distributes Dimmunix
// histories: listing and showing signatures, disabling/enabling them
// (§5.7), removing them (leaving format-v2 tombstones so the removal
// propagates), merging vendor-distributed histories (§8's proactive
// immunization), porting signatures across code revisions (§8) with
// sigport rules, and syncing with shared immunity stores — including
// running the HTTP sync daemon fleets of machines without a shared
// filesystem converge through.
//
// Usage:
//
//	dimmunix-hist -f hist.json list
//	dimmunix-hist -f hist.json show <sig-id>
//	dimmunix-hist -f hist.json disable <sig-id>
//	dimmunix-hist -f hist.json enable <sig-id>
//	dimmunix-hist -f hist.json remove <sig-id>
//	dimmunix-hist -f hist.json merge <other.json>
//	dimmunix-hist -f hist.json port <rules.txt> -o ported.json
//	dimmunix-hist -f hist.json serve <addr>      # run the sync daemon
//	dimmunix-hist -f hist.json push <store>      # publish -f into a store
//	dimmunix-hist -f hist.json pull <store>      # fold a store into -f
//	dimmunix-hist -f hist.json diff <store>      # compare -f with a store
//	dimmunix-hist stats <url>                    # pretty-print a daemon's /statusz
//
// A <store> is a file path, a directory of per-process journals (or
// dir:PATH), or the http:// URL of a serve daemon. The serve daemon
// exposes GET /statusz (version, per-signature summary, served-request
// counters); `stats` fetches and pretty-prints it.
//
// -token (or DIMMUNIX_SYNC_TOKEN) arms a shared-secret push token: serve
// rejects pushes without it (401), push sends it. The daemon shuts down
// gracefully on SIGINT/SIGTERM, and every store operation aborts on those
// signals instead of waiting out a hung daemon.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dimmunix/internal/histstore"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
)

func main() {
	var (
		file  = flag.String("f", "dimmunix-history.json", "history file")
		out   = flag.String("o", "", "output file (port); defaults to -f")
		token = flag.String("token", os.Getenv("DIMMUNIX_SYNC_TOKEN"),
			"shared-secret push token (serve: require it; push: send it)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "missing command: list | show | disable | enable | remove | merge | port | serve | push | pull | diff | stats")
		os.Exit(2)
	}

	// Every store operation runs under a signal-aware context: Ctrl-C or
	// SIGTERM cancels in-flight store I/O instead of waiting out a hung
	// daemon or a wedged advisory lock.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	h, err := signature.Load(*file)
	if err != nil {
		fatal(err)
	}

	switch args[0] {
	case "list":
		fmt.Printf("%d signatures in %s", h.Len(), *file)
		if n := len(h.Tombstones()); n > 0 {
			fmt.Printf(" (+%d tombstones)", n)
		}
		fmt.Println()
		for _, sig := range h.Snapshot() {
			state := sourceTag(sig.Source)
			if sig.Disabled {
				state += " [disabled]"
			}
			fmt.Printf("  %s  %-10s depth=%d stacks=%d avoided=%d aborts=%d%s\n",
				sig.ID, sig.Kind, sig.Depth, sig.Size(), sig.AvoidCount, sig.AbortCount, state)
		}
	case "show":
		sig := h.Get(arg(args, 1))
		if sig == nil {
			fatal(fmt.Errorf("no signature %q", arg(args, 1)))
		}
		fmt.Printf("%s (%s, depth %d, created %s)%s\n", sig.ID, sig.Kind, sig.Depth,
			time.Unix(sig.CreatedUnix, 0).Format(time.RFC3339), sourceTag(sig.Source))
		fmt.Printf("avoided=%d aborts=%d fp=%d tp=%d disabled=%v\n",
			sig.AvoidCount, sig.AbortCount, sig.FPCount, sig.TPCount, sig.Disabled)
		for i, s := range sig.Stacks {
			fmt.Printf("stack %d:\n", i)
			for _, f := range s {
				fmt.Printf("    %s\n", f)
			}
		}
	case "disable", "enable":
		id := arg(args, 1)
		if !h.SetDisabled(id, args[0] == "disable") {
			fatal(fmt.Errorf("no signature %q", id))
		}
		save(h)
		fmt.Printf("%sd %s\n", args[0], id)
	case "remove":
		id := arg(args, 1)
		if !h.Remove(id) {
			fatal(fmt.Errorf("no signature %q", id))
		}
		save(h)
		fmt.Printf("removed %s\n", id)
	case "merge":
		other, err := signature.Load(arg(args, 1))
		if err != nil {
			fatal(err)
		}
		n := h.Merge(other)
		save(h)
		fmt.Printf("merged %d new signatures (total %d)\n", n, h.Len())
	case "port":
		f, err := os.Open(arg(args, 1))
		if err != nil {
			fatal(err)
		}
		rules, err := sigport.ParseRules(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		ported, st := sigport.Port(h, rules)
		dst := *out
		if dst == "" {
			dst = *file
		}
		if err := ported.SaveTo(dst); err != nil {
			fatal(err)
		}
		fmt.Printf("ported %d signatures (%d frames rewritten, %d dropped) -> %s\n",
			st.Ported, st.Frames, st.Dropped, dst)
	case "serve":
		addr := arg(args, 1)
		srv, err := histstore.NewServer(histstore.NewFileStore(*file))
		if err != nil {
			fatal(err)
		}
		if *token != "" {
			srv.SetToken(*token)
		}
		fmt.Printf("dimmunix-hist: serving %s on %s (%d signatures%s)\n",
			*file, addr, srv.History().Len(), authNote(*token))
		serve(ctx, addr, srv)
	case "push":
		st := openStore(arg(args, 1), *token)
		defer st.Close()
		if _, err := st.Push(ctx, h); err != nil {
			fatal(err)
		}
		fmt.Printf("pushed %d signatures, %d tombstones -> %s\n",
			h.Len(), len(h.Tombstones()), arg(args, 1))
	case "pull":
		st := openStore(arg(args, 1), *token)
		defer st.Close()
		remote, _, err := st.Load(ctx)
		if err != nil {
			fatal(err)
		}
		n := h.Merge(remote)
		save(h)
		fmt.Printf("pulled %d changes from %s (total %d signatures, %d tombstones)\n",
			n, arg(args, 1), h.Len(), len(h.Tombstones()))
	case "diff":
		st := openStore(arg(args, 1), *token)
		defer st.Close()
		remote, _, err := st.Load(ctx)
		if err != nil {
			fatal(err)
		}
		diff(h, remote, *file, arg(args, 1))
	case "stats":
		if err := printDaemonStats(ctx, arg(args, 1)); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

// serve runs the sync daemon until the signal context cancels, then
// shuts the listener down gracefully with a bounded drain so in-flight
// pushes finish but a wedged client cannot hold the exit hostage.
func serve(ctx context.Context, addr string, srv *histstore.Server) {
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		drain, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := hs.Shutdown(drain); err != nil {
			_ = hs.Close()
		}
		fmt.Println("dimmunix-hist: daemon stopped")
	}
}

func authNote(token string) string {
	if token == "" {
		return ""
	}
	return ", push token required"
}

// openStore resolves a store argument; a plain path to a (possibly
// missing) history file resolves to a FileStore, so `push other.json`
// keeps working like `merge` in reverse. token (when set) authenticates
// pushes to token-guarded daemons.
func openStore(spec, token string) histstore.Store {
	st, err := histstore.Open(spec)
	if err != nil {
		fatal(err)
	}
	if hs, ok := st.(*histstore.HTTPStore); ok && token != "" {
		hs.SetToken(token)
	}
	return st
}

// diff prints the entry-by-entry comparison of two snapshots under the
// v2 revision-join semantics: which side would win each entry on merge.
func diff(local, remote *signature.History, lname, rname string) {
	fmt.Printf("diff %s (local) vs %s (remote)\n", lname, rname)
	same := true
	rTombs := make(map[string]signature.Tombstone)
	for _, t := range remote.Tombstones() {
		rTombs[t.ID] = t
	}
	lTombs := make(map[string]signature.Tombstone)
	for _, t := range local.Tombstones() {
		lTombs[t.ID] = t
	}
	seen := make(map[string]bool)
	for _, s := range local.Snapshot() {
		seen[s.ID] = true
		r := remote.Get(s.ID)
		switch {
		case r != nil:
			if r.Disabled != s.Disabled || r.Rev != s.Rev {
				fmt.Printf("  ~ %s  local rev=%d disabled=%v, remote rev=%d disabled=%v\n",
					s.ID, s.Rev, s.Disabled, r.Rev, r.Disabled)
				same = false
			}
		case rTombs[s.ID].Rev >= s.Rev:
			fmt.Printf("  - %s  removed remotely (tombstone rev=%d >= local rev=%d)\n",
				s.ID, rTombs[s.ID].Rev, s.Rev)
			same = false
		default:
			fmt.Printf("  + %s  only local (rev=%d)%s\n", s.ID, s.Rev, sourceTag(s.Source))
			same = false
		}
	}
	for _, r := range remote.Snapshot() {
		if seen[r.ID] {
			continue
		}
		if lTombs[r.ID].Rev >= r.Rev {
			fmt.Printf("  - %s  removed locally (tombstone rev=%d >= remote rev=%d)\n",
				r.ID, lTombs[r.ID].Rev, r.Rev)
		} else {
			fmt.Printf("  + %s  only remote (rev=%d)%s\n", r.ID, r.Rev, sourceTag(r.Source))
		}
		same = false
	}
	for id, t := range rTombs {
		if _, dup := lTombs[id]; !dup && local.Get(id) == nil && remote.Get(id) == nil {
			fmt.Printf("  t %s  tombstone only remote (rev=%d)\n", id, t.Rev)
			same = false
		}
	}
	for id, t := range lTombs {
		if _, dup := rTombs[id]; !dup && local.Get(id) == nil && remote.Get(id) == nil {
			fmt.Printf("  t %s  tombstone only local (rev=%d)\n", id, t.Rev)
			same = false
		}
	}
	if same {
		fmt.Println("  histories are identical")
	}
}

// printDaemonStats fetches <url>/statusz and pretty-prints the daemon's
// state: version, uptime, counters, and the per-signature summary.
func printDaemonStats(ctx context.Context, url string) error {
	base := strings.TrimSuffix(url, "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statusz", nil)
	if err != nil {
		return err
	}
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("statusz: %s", resp.Status)
	}
	var st struct {
		Version       string `json:"version"`
		UptimeSeconds int64  `json:"uptime_seconds"`
		Fingerprint   string `json:"fingerprint"`
		Tombstones    int    `json:"tombstones"`
		Signatures    []struct {
			ID         string `json:"id"`
			Kind       string `json:"kind"`
			Depth      int    `json:"depth"`
			Stacks     int    `json:"stacks"`
			Rev        uint64 `json:"rev"`
			Disabled   bool   `json:"disabled"`
			Source     string `json:"source"`
			AvoidCount uint64 `json:"avoid_count"`
			AbortCount uint64 `json:"abort_count"`
		} `json:"signatures"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	fmt.Printf("daemon %s\n", base)
	fmt.Printf("  version     %s\n", st.Version)
	fmt.Printf("  uptime      %s\n", (time.Duration(st.UptimeSeconds) * time.Second).String())
	if st.Fingerprint != "" {
		fmt.Printf("  fingerprint %s\n", st.Fingerprint)
	}
	fmt.Printf("  signatures  %d (+%d tombstones)\n", len(st.Signatures), st.Tombstones)
	keys := make([]string, 0, len(st.Counters))
	for k := range st.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-16s %d\n", k, st.Counters[k])
	}
	for _, s := range st.Signatures {
		state := sourceTag(s.Source)
		if s.Disabled {
			state += " [disabled]"
		}
		fmt.Printf("    %s  %-10s depth=%d stacks=%d rev=%d avoided=%d aborts=%d%s\n",
			s.ID, s.Kind, s.Depth, s.Stacks, s.Rev, s.AvoidCount, s.AbortCount, state)
	}
	return nil
}

// sourceTag renders an entry's provenance — " [predicted]" for entries a
// canary's trace analysis pushed (they were never experienced as real
// deadlocks by anyone), "" for live archives.
func sourceTag(source string) string {
	if source == "" {
		return ""
	}
	return " [" + source + "]"
}

func arg(args []string, i int) string {
	if i >= len(args) {
		fatal(fmt.Errorf("missing argument"))
	}
	return args[i]
}

func save(h *signature.History) {
	if err := h.Save(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimmunix-hist:", err)
	os.Exit(1)
}
