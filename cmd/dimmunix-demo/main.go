// Command dimmunix-demo shows deadlock immunity end to end: "run 1"
// contracts the §4 two-lock deadlock, which the monitor detects, archives,
// and recovers from; "run 2" replays the same program against the saved
// history and Dimmunix steers it around the pattern. The program under
// test uses zero-value dimmunix.Mutex values and the process-wide default
// runtime (re-initialized per run via Init/Shutdown), the same drop-in
// surface an application would use in place of sync.Mutex.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dimmunix"
)

//go:noinline
func updateAB(a, b *dimmunix.Mutex, hold time.Duration) error {
	if err := a.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(hold)
	//lint:ignore lockorder deliberate inversion: the demo exists to trigger avoidance
	if err := b.LockCtx(context.Background()); err != nil {
		a.Unlock()
		return err
	}
	b.Unlock()
	a.Unlock()
	return nil
}

//go:noinline
func updateBA(a, b *dimmunix.Mutex, hold time.Duration) error {
	if err := b.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(hold)
	if err := a.LockCtx(context.Background()); err != nil {
		b.Unlock()
		return err
	}
	a.Unlock()
	b.Unlock()
	return nil
}

func run(histPath string, label string) {
	if err := dimmunix.Init(
		dimmunix.WithHistory(histPath),
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithAbortRecovery(),
		dimmunix.WithRecovery(func(info dimmunix.DeadlockInfo) {
			fmt.Printf("  [monitor] deadlock detected (threads %v) -> signature %s archived, recovering\n",
				info.ThreadIDs, info.Sig.ID)
		}),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer dimmunix.Shutdown()

	rt := dimmunix.Default()
	fmt.Printf("%s: history has %d signature(s)\n", label, rt.History().Len())
	var a, b dimmunix.Mutex

	var wg sync.WaitGroup
	wg.Add(2)
	var err1, err2 error
	go func() { defer wg.Done(); err1 = updateAB(&a, &b, 50*time.Millisecond) }()
	go func() { defer wg.Done(); err2 = updateBA(&a, &b, 50*time.Millisecond) }()
	wg.Wait()

	stats := rt.Stats()
	switch {
	case err1 == nil && err2 == nil:
		fmt.Printf("%s: both threads completed (yields: %d) — deadlock avoided\n", label, stats.Yields)
	default:
		fmt.Printf("%s: workers unwound (T1: %v, T2: %v)\n", label, err1, err2)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "dimmunix-demo-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	histPath := filepath.Join(dir, "history.json")

	fmt.Println("=== run 1: the program meets the deadlock for the first time ===")
	run(histPath, "run 1")
	fmt.Println()
	fmt.Println("=== run 2: same program, immunized by the saved history ===")
	run(histPath, "run 2")
}
