// Command dimmunix-demo shows deadlock immunity end to end: "run 1"
// contracts the §4 two-lock deadlock, which the monitor detects, archives,
// and recovers from; "run 2" replays the same program against the saved
// history and Dimmunix steers it around the pattern.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dimmunix"
)

//go:noinline
func updateAB(t *dimmunix.Thread, a, b *dimmunix.Mutex, hold time.Duration) error {
	if err := a.LockT(t); err != nil {
		return err
	}
	time.Sleep(hold)
	if err := b.LockT(t); err != nil {
		_ = a.UnlockT(t)
		return err
	}
	_ = b.UnlockT(t)
	_ = a.UnlockT(t)
	return nil
}

//go:noinline
func updateBA(t *dimmunix.Thread, a, b *dimmunix.Mutex, hold time.Duration) error {
	if err := b.LockT(t); err != nil {
		return err
	}
	time.Sleep(hold)
	if err := a.LockT(t); err != nil {
		_ = b.UnlockT(t)
		return err
	}
	_ = a.UnlockT(t)
	_ = b.UnlockT(t)
	return nil
}

func run(histPath string, label string) {
	var rt *dimmunix.Runtime
	rt = dimmunix.MustNew(dimmunix.Config{
		HistoryPath: histPath,
		Tau:         5 * time.Millisecond,
		MatchDepth:  2,
		OnDeadlock: func(info dimmunix.DeadlockInfo) {
			fmt.Printf("  [monitor] deadlock detected (threads %v) -> signature %s archived, recovering\n",
				info.ThreadIDs, info.Sig.ID)
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	defer rt.Stop()

	fmt.Printf("%s: history has %d signature(s)\n", label, rt.History().Len())
	a, b := rt.NewMutex(), rt.NewMutex()
	t1 := rt.RegisterThread("T1")
	t2 := rt.RegisterThread("T2")
	defer t1.Close()
	defer t2.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	var err1, err2 error
	go func() { defer wg.Done(); err1 = updateAB(t1, a, b, 50*time.Millisecond) }()
	go func() { defer wg.Done(); err2 = updateBA(t2, a, b, 50*time.Millisecond) }()
	wg.Wait()

	stats := rt.Stats()
	switch {
	case err1 == nil && err2 == nil:
		fmt.Printf("%s: both threads completed (yields: %d) — deadlock avoided\n", label, stats.Yields)
	default:
		fmt.Printf("%s: workers unwound (T1: %v, T2: %v)\n", label, err1, err2)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "dimmunix-demo-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	histPath := filepath.Join(dir, "history.json")

	fmt.Println("=== run 1: the program meets the deadlock for the first time ===")
	run(histPath, "run 1")
	fmt.Println()
	fmt.Println("=== run 2: same program, immunized by the saved history ===")
	run(histPath, "run 2")
}
