// Command dimmunix-bench regenerates the tables and figures of the
// Dimmunix paper's evaluation (§7) on the simulated substrates.
//
// Usage:
//
//	dimmunix-bench -list
//	dimmunix-bench -exp fig5            # one experiment, quick scale
//	dimmunix-bench -exp all -full       # everything, paper scale
package main

import (
	"flag"
	"fmt"
	"os"

	"dimmunix/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		full = flag.Bool("full", false, "paper-scale runs (slow) instead of quick runs")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.Scale{Full: *full}
	if *exp == "all" {
		for _, e := range bench.All() {
			fmt.Printf("running %s...\n", e.ID)
			rep := e.Run(scale)
			rep.Render(os.Stdout)
		}
		return
	}
	e := bench.ByID(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	rep := e.Run(scale)
	rep.Render(os.Stdout)
}
