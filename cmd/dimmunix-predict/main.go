// Command dimmunix-predict turns acquisition traces into immunity before
// any deadlock fires: it loads a journal recorded by a runtime in trace
// mode (WithTraceRecorder / DIMMUNIX_TRACE), replays it through the
// offline predictor (internal/predict), and reports the lock-order
// cycles that could deadlock under another schedule. Predictions pass
// the soundness guards of dynamic deadlock prediction (thread
// disjointness, no common guard lock, handoff-aware lock sets), so a
// predicted signature is one no recorded evidence rules out.
//
// Usage:
//
//	dimmunix-predict analyze <trace>             # report predictions
//	dimmunix-predict analyze <trace> -o out.json # also write a history
//	dimmunix-predict push <trace> -sync-url <store>
//
// `push` is the fleet canary loop: one canary process records a trace,
// push sends the predicted signatures to the shared immunity store (a
// history file, journal directory, or dimmunix-hist serve daemon), and
// every synced runtime starts avoiding the pattern on its next sync —
// its danger index epoch-bumps exactly as for a live archive.
//
// -depth stamps the emitted signatures' matching depth (match it to the
// consuming runtimes' MatchDepth); -token authenticates pushes to
// token-guarded daemons (or DIMMUNIX_SYNC_TOKEN). The emitted entries
// carry source=predicted so dimmunix-hist list/show/diff can tell them
// from experienced ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dimmunix/internal/histstore"
	"dimmunix/internal/predict"
	"dimmunix/internal/trace"
)

func main() {
	var (
		depth   = flag.Int("depth", 0, "matching depth for emitted signatures (0: default)")
		maxLen  = flag.Int("max-cycle", 0, "cycle search bound (0: default)")
		out     = flag.String("o", "", "write predicted history to this file (analyze)")
		syncURL = flag.String("sync-url", "", "immunity store to push predictions to (push)")
		token   = flag.String("token", os.Getenv("DIMMUNIX_SYNC_TOKEN"),
			"shared-secret push token for token-guarded daemons")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dimmunix-predict [flags] analyze|push <trace>")
		os.Exit(2)
	}
	cmd, path := args[0], args[1]

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tr, err := trace.ReadAll(path)
	if err != nil {
		fatal(err)
	}
	if tr.Truncated {
		fmt.Fprintf(os.Stderr, "dimmunix-predict: warning: %s ends in a torn record (crash mid-write?); analyzing the intact prefix\n", path)
	}
	res := predict.Analyze(tr, predict.Options{Depth: *depth, MaxCycleLen: *maxLen})
	report(path, tr, res)

	switch cmd {
	case "analyze":
		if *out != "" {
			h := res.History(tr.Fingerprint)
			if err := h.SaveTo(*out); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d predicted signature(s) -> %s\n", len(res.Signatures), *out)
		}
	case "push":
		if *syncURL == "" {
			fatal(fmt.Errorf("push requires -sync-url"))
		}
		if len(res.Signatures) == 0 {
			fmt.Println("nothing to push")
			return
		}
		st, err := histstore.Open(*syncURL)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		if hs, ok := st.(*histstore.HTTPStore); ok && *token != "" {
			hs.SetToken(*token)
		}
		if _, err := st.Push(ctx, res.History(tr.Fingerprint)); err != nil {
			fatal(err)
		}
		fmt.Printf("pushed %d predicted signature(s) -> %s\n", len(res.Signatures), *syncURL)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

func report(path string, tr *trace.Trace, res *predict.Result) {
	fp := tr.Fingerprint
	if fp == "" {
		fp = "<none>"
	}
	fmt.Printf("trace %s: %d records, fingerprint %s\n", path, len(tr.Records), fp)
	fmt.Printf("dependencies=%d handoffs=%d cycles=%d rejected: same-thread=%d common-lock=%d no-stack=%d\n",
		res.Dependencies, res.Handoffs, res.Cycles,
		res.Rejected.SameThread, res.Rejected.CommonLock, res.Rejected.NoStack)
	fmt.Printf("predicted %d signature(s)\n", len(res.Signatures))
	for _, sig := range res.Signatures {
		fmt.Printf("  %s  %-10s depth=%d stacks=%d [predicted]\n",
			sig.ID, sig.Kind, sig.Depth, sig.Size())
		for i, s := range sig.Stacks {
			fmt.Printf("    stack %d: %s\n", i, s)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimmunix-predict:", err)
	os.Exit(1)
}
