package dimmunix_test

import (
	"context"
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dimmunix"
)

func TestWithObserverReceivesEvents(t *testing.T) {
	var yields, archived atomic.Uint64
	initDefault(t,
		dimmunix.WithAbortRecovery(),
		dimmunix.WithObserver(func(ev dimmunix.Event) {
			switch ev.(type) {
			case dimmunix.AvoidanceYield:
				yields.Add(1)
			case dimmunix.SignatureArchived:
				archived.Add(1)
			}
		}),
	)

	var mu1, mu2 dimmunix.Mutex
	seedInversion(t, &mu1, &mu2)
	waitUntil(t, "archive event", func() bool { return archived.Load() >= 1 })
	runInversion(t, &mu1, &mu2, 5*time.Millisecond)
	waitUntil(t, "yield events", func() bool { return yields.Load() >= 1 })
}

func TestSubscribeFacade(t *testing.T) {
	initDefault(t, dimmunix.WithAbortRecovery())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := dimmunix.Default().Subscribe(ctx)
	var sawDeadlock atomic.Bool
	go func() {
		for ev := range events {
			if _, ok := ev.(dimmunix.DeadlockDetected); ok {
				sawDeadlock.Store(true)
			}
		}
	}()
	var mu1, mu2 dimmunix.Mutex
	seedInversion(t, &mu1, &mu2)
	waitUntil(t, "deadlock event", func() bool { return sawDeadlock.Load() })
}

func TestDebugHandlerServesStatus(t *testing.T) {
	initDefault(t, dimmunix.WithAbortRecovery())
	var mu1, mu2 dimmunix.Mutex
	seedInversion(t, &mu1, &mu2)
	runInversion(t, &mu1, &mu2, 5*time.Millisecond)

	srv := httptest.NewServer(dimmunix.DebugHandler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var status dimmunix.DebugStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if status.Stats.Acquired == 0 || status.Stats.Yields == 0 {
		t.Errorf("stats not populated: %+v", status.Stats)
	}
	if status.Stats.FastAcquired+status.Stats.GuardedAcquired != status.Stats.Acquired {
		t.Errorf("tier split broken in served stats: %+v", status.Stats)
	}
	if len(status.History.Signatures) != 1 {
		t.Fatalf("history summary has %d signatures, want 1", len(status.History.Signatures))
	}
	if status.History.Signatures[0].Yields == 0 {
		t.Error("per-signature yields missing from summary")
	}
	if got := status.Stats.YieldsBySignature[status.History.Signatures[0].ID]; got == 0 {
		t.Error("YieldsBySignature missing the archived signature")
	}
}

func TestDebugHandlerWithoutRuntime(t *testing.T) {
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/statusz", nil)
	dimmunix.DebugHandler(nil).ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("without a default runtime: status = %d, want 503 (and no forced init)", rec.Code)
	}
}

func TestExpvarPublish(t *testing.T) {
	initDefault(t)
	dimmunix.ExpvarPublish()
	dimmunix.ExpvarPublish() // idempotent
	v := expvar.Get("dimmunix")
	if v == nil {
		t.Fatal("expvar key not published")
	}
	var mu dimmunix.Mutex
	mu.Lock()
	mu.Unlock()
	var decoded dimmunix.Stats
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar value not valid stats JSON: %v", err)
	}
	if decoded.Acquired == 0 {
		t.Error("expvar stats not live")
	}
}

// seedInversion contracts the mu1/mu2 lock-order inversion once under
// abort recovery so its signature is archived.
func seedInversion(t *testing.T, mu1, mu2 *dimmunix.Mutex) {
	t.Helper()
	runInversion(t, mu1, mu2, 60*time.Millisecond)
	waitUntil(t, "signature archived", func() bool {
		return dimmunix.Default().History().Len() >= 1
	})
}

// runInversion drives the canonical AB/BA pattern through stable call
// sites, retrying recovered sides.
func runInversion(t *testing.T, mu1, mu2 *dimmunix.Mutex, hold time.Duration) {
	t.Helper()
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		obsNestAB(mu1, mu2, hold)
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		obsNestBA(mu1, mu2, hold)
	}()
	<-done
	<-done
}

//go:noinline
func obsNestAB(mu1, mu2 *dimmunix.Mutex, hold time.Duration) {
	if err := mu1.LockCtx(context.Background()); err != nil {
		return
	}
	time.Sleep(hold)
	if err := mu2.LockCtx(context.Background()); err != nil {
		mu1.Unlock()
		return
	}
	mu2.Unlock()
	mu1.Unlock()
}

//go:noinline
func obsNestBA(mu1, mu2 *dimmunix.Mutex, hold time.Duration) {
	if err := mu2.LockCtx(context.Background()); err != nil {
		return
	}
	time.Sleep(hold)
	if err := mu1.LockCtx(context.Background()); err != nil {
		mu2.Unlock()
		return
	}
	mu1.Unlock()
	mu2.Unlock()
}
