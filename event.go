package dimmunix

import (
	"dimmunix/internal/obs"
)

// Event is one observability event published by a Runtime: every
// deadlock detected, signature archived or disabled, avoidance yield,
// recovery, sync round, and history change is delivered as one of the
// concrete payload types below. Consume the stream with a type switch:
//
//	for ev := range rt.Subscribe(ctx) {
//		switch e := ev.(type) {
//		case dimmunix.DeadlockDetected:
//			log.Printf("deadlock %s (new=%v)", e.SigID, e.New)
//		case dimmunix.AvoidanceYield:
//			yields.Inc(e.SigID)
//		}
//	}
//
// Delivery is asynchronous through a bounded ring (WithEventBuffer):
// when observers or subscribers fall behind, the oldest undelivered
// events are dropped and counted in Stats().EventsDropped — the runtime
// itself never slows down or blocks for an observer. Events are
// telemetry; control flow (recovery, starvation breaking) does not
// depend on their delivery, which is why the WithRecovery and
// WithStarvationHook callbacks remain synchronous: they are the
// guaranteed-delivery adapters for the two events that commonly carry
// control decisions (DeadlockDetected, StarvationAverted).
type Event = obs.Event

// Concrete event payloads. See the field docs in each type.
type (
	// DeadlockDetected: the monitor found a deadlock cycle (§3).
	DeadlockDetected = obs.DeadlockDetected
	// SignatureArchived: a new signature was saved to the history.
	SignatureArchived = obs.SignatureArchived
	// SignatureDisabled: a signature's disabled flag flipped (§5.7).
	SignatureDisabled = obs.SignatureDisabled
	// AvoidanceYield: a thread yielded to avoid a known pattern (§5.4).
	AvoidanceYield = obs.AvoidanceYield
	// RecoveryAborted: abort recovery unwound deadlock victims.
	RecoveryAborted = obs.RecoveryAborted
	// StarvationAverted: a yield cycle was handled (§5.4).
	StarvationAverted = obs.StarvationAverted
	// SyncRoundDone: one history-store sync round completed (§8).
	SyncRoundDone = obs.SyncRoundDone
	// HistoryChanged: the live signature history mutated; Epoch is the
	// new fast-path invalidation epoch.
	HistoryChanged = obs.HistoryChanged
)

// DefaultEventBuffer is the observability ring (and subscriber channel)
// capacity when WithEventBuffer is not used.
const DefaultEventBuffer = obs.DefaultBufferSize
