// Vendor patch: proactive immunization (§8).
//
// "Dimmunix can also be used as an alternative to patching and upgrading:
// instead of modifying the program code, it can be 'patched' against
// deadlock bugs by simply inserting the corresponding bug's signature into
// the deadlock history... vendors could ship their software with
// signatures for known deadlocks."
//
// This example plays both sides: the VENDOR's test lab contracts the
// deadlock once and exports the signature; the CUSTOMER site merges the
// vendor's signature file into its (empty) local history *before ever
// hitting the bug* — and never deadlocks at all.
//
//	go run ./examples/vendorpatch
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dimmunix"
)

// The "product": a connection pool whose Get/Close paths nest two locks in
// opposite orders (the MySQL-JDBC family of Table 1 bugs).

type product struct {
	conn *dimmunix.Mutex
	stmt *dimmunix.Mutex
}

//go:noinline
func (p *product) execute(t *dimmunix.Thread, window time.Duration) error {
	if err := p.stmt.LockT(t); err != nil {
		return err
	}
	time.Sleep(window)
	if err := p.conn.LockT(t); err != nil {
		_ = p.stmt.UnlockT(t)
		return err
	}
	_ = p.conn.UnlockT(t)
	_ = p.stmt.UnlockT(t)
	return nil
}

//go:noinline
func (p *product) closeConn(t *dimmunix.Thread, window time.Duration) error {
	if err := p.conn.LockT(t); err != nil {
		return err
	}
	time.Sleep(window)
	if err := p.stmt.LockT(t); err != nil {
		_ = p.conn.UnlockT(t)
		return err
	}
	_ = p.stmt.UnlockT(t)
	_ = p.conn.UnlockT(t)
	return nil
}

func exercise(rt *dimmunix.Runtime, window time.Duration) (error, error) {
	p := &product{
		conn: rt.NewMutexKind(dimmunix.Recursive),
		stmt: rt.NewMutexKind(dimmunix.Recursive),
	}
	t1 := rt.RegisterThread("app-1")
	t2 := rt.RegisterThread("app-2")
	defer t1.Close()
	defer t2.Close()
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = p.execute(t1, window) }()
	go func() { defer wg.Done(); e2 = p.closeConn(t2, window) }()
	wg.Wait()
	return e1, e2
}

func main() {
	dir, err := os.MkdirTemp("", "vendorpatch-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	vendorFile := filepath.Join(dir, "vendor-signatures.json")
	customerFile := filepath.Join(dir, "customer-history.json")

	// --- Vendor test lab: contract the bug once, export the signature.
	fmt.Println("=== vendor lab: reproducing the reported deadlock ===")
	{
		var rt *dimmunix.Runtime
		rt = dimmunix.MustNew(dimmunix.Config{
			HistoryPath: vendorFile,
			Tau:         5 * time.Millisecond,
			MatchDepth:  2,
			OnDeadlock: func(info dimmunix.DeadlockInfo) {
				fmt.Printf("  lab: captured signature %s\n", info.Sig.ID)
				rt.AbortThreads(info.ThreadIDs...)
			},
		})
		exercise(rt, 50*time.Millisecond)
		rt.Stop()
	}

	// --- Customer site: merge the vendor file BEFORE first use.
	fmt.Println("=== customer site: applying the vendor signature patch ===")
	local, err := dimmunix.LoadHistory(customerFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	vendor, err := dimmunix.LoadHistory(vendorFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	added := local.Merge(vendor)
	if err := local.SaveTo(customerFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  merged %d vendor signature(s) into the local history\n", added)

	var rt *dimmunix.Runtime
	rt = dimmunix.MustNew(dimmunix.Config{
		HistoryPath: customerFile,
		Tau:         5 * time.Millisecond,
		MatchDepth:  2,
		OnDeadlock: func(info dimmunix.DeadlockInfo) {
			fmt.Println("  customer: DEADLOCK (the patch failed!)")
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	defer rt.Stop()

	for i := 1; i <= 3; i++ {
		e1, e2 := exercise(rt, 50*time.Millisecond)
		if e1 == nil && e2 == nil {
			fmt.Printf("  customer run %d: completed, never deadlocked (yields: %d)\n",
				i, rt.Stats().Yields)
		} else {
			fmt.Printf("  customer run %d: %v / %v\n", i, e1, e2)
		}
	}
}
