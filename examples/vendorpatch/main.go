// Vendor patch: proactive immunization (§8).
//
// "Dimmunix can also be used as an alternative to patching and upgrading:
// instead of modifying the program code, it can be 'patched' against
// deadlock bugs by simply inserting the corresponding bug's signature into
// the deadlock history... vendors could ship their software with
// signatures for known deadlocks."
//
// This example plays both sides: the VENDOR's test lab contracts the
// deadlock once and exports the signature; the CUSTOMER site merges the
// vendor's signature file into its (empty) local history *before ever
// hitting the bug* — and never deadlocks at all. The "product" uses
// zero-value dimmunix.Mutex fields, so both phases run the same
// unmodified product code against different default-runtime histories
// (Init ... Shutdown ... Init).
//
//	go run ./examples/vendorpatch
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dimmunix"
)

// The "product": a connection pool whose Get/Close paths nest two locks in
// opposite orders (the MySQL-JDBC family of Table 1 bugs).

type product struct {
	conn dimmunix.Mutex
	stmt dimmunix.Mutex
}

//go:noinline
func (p *product) execute(window time.Duration) error {
	if err := p.stmt.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(window)
	if err := p.conn.LockCtx(context.Background()); err != nil {
		p.stmt.Unlock()
		return err
	}
	p.conn.Unlock()
	p.stmt.Unlock()
	return nil
}

//go:noinline
func (p *product) closeConn(window time.Duration) error {
	if err := p.conn.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(window)
	//lint:ignore lockorder deliberate inversion: reproduces the vendored library deadlock being patched
	if err := p.stmt.LockCtx(context.Background()); err != nil {
		p.conn.Unlock()
		return err
	}
	p.stmt.Unlock()
	p.conn.Unlock()
	return nil
}

func exercise(window time.Duration) (error, error) {
	p := &product{} // fresh zero-value locks bind to the current runtime
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = p.execute(window) }()
	go func() { defer wg.Done(); e2 = p.closeConn(window) }()
	wg.Wait()
	return e1, e2
}

func initRuntime(histPath string, onDeadlock func(dimmunix.DeadlockInfo)) {
	if err := dimmunix.Init(
		dimmunix.WithHistory(histPath),
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithAbortRecovery(),
		dimmunix.WithRecovery(onDeadlock),
	); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "vendorpatch-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	vendorFile := filepath.Join(dir, "vendor-signatures.json")
	customerFile := filepath.Join(dir, "customer-history.json")

	// --- Vendor test lab: contract the bug once, export the signature.
	fmt.Println("=== vendor lab: reproducing the reported deadlock ===")
	initRuntime(vendorFile, func(info dimmunix.DeadlockInfo) {
		fmt.Printf("  lab: captured signature %s\n", info.Sig.ID)
	})
	exercise(50 * time.Millisecond)
	if err := dimmunix.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// --- Customer site: merge the vendor file BEFORE first use.
	fmt.Println("=== customer site: applying the vendor signature patch ===")
	local, err := dimmunix.LoadHistory(customerFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	vendor, err := dimmunix.LoadHistory(vendorFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	added := local.Merge(vendor)
	if err := local.SaveTo(customerFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  merged %d vendor signature(s) into the local history\n", added)

	initRuntime(customerFile, func(dimmunix.DeadlockInfo) {
		fmt.Println("  customer: DEADLOCK (the patch failed!)")
	})
	defer dimmunix.Shutdown()

	for i := 1; i <= 3; i++ {
		e1, e2 := exercise(50 * time.Millisecond)
		if e1 == nil && e2 == nil {
			fmt.Printf("  customer run %d: completed, never deadlocked (yields: %d)\n",
				i, dimmunix.Default().Stats().Yields)
		} else {
			fmt.Printf("  customer run %d: %v / %v\n", i, e1, e2)
		}
	}
}
