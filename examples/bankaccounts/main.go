// Bank accounts: unordered two-lock transfers — the classic deadlock that
// the paper's §4 pseudocode distills. A pool of tellers moves money
// between accounts, locking source before destination (no global order).
// Dimmunix lets the system contract each deadlock pattern once, then keeps
// it running; the recovery hook retries failed transfers after unwinding,
// so no transfer is lost (totals are checked at the end).
//
//	go run ./examples/bankaccounts
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix"
)

type account struct {
	mu      *dimmunix.Mutex
	balance int64
}

type bank struct {
	rt       *dimmunix.Runtime
	accounts []*account
	retries  atomic.Uint64
	done     atomic.Uint64
}

// transfer locks src then dst — deliberately unordered.
//
//go:noinline
func (bk *bank) transfer(t *dimmunix.Thread, src, dst *account, amount int64) error {
	if err := src.mu.LockT(t); err != nil {
		return err
	}
	time.Sleep(200 * time.Microsecond) // audit work while holding src
	if err := dst.mu.LockT(t); err != nil {
		_ = src.mu.UnlockT(t)
		return err
	}
	src.balance -= amount
	dst.balance += amount
	_ = dst.mu.UnlockT(t)
	_ = src.mu.UnlockT(t)
	return nil
}

func (bk *bank) teller(id int, transfers int) {
	t := bk.rt.RegisterThread(fmt.Sprintf("teller-%d", id))
	defer t.Close()
	rng := rand.New(rand.NewSource(int64(id)))
	for i := 0; i < transfers; i++ {
		src := bk.accounts[rng.Intn(len(bk.accounts))]
		dst := bk.accounts[rng.Intn(len(bk.accounts))]
		if src == dst {
			continue
		}
		for {
			err := bk.transfer(t, src, dst, 1)
			if err == nil {
				bk.done.Add(1)
				break
			}
			if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
				// The restart: the transaction unwound cleanly; retry.
				bk.retries.Add(1)
				continue
			}
			fmt.Println("teller error:", err)
			return
		}
	}
}

func main() {
	var rt *dimmunix.Runtime
	rt = dimmunix.MustNew(dimmunix.Config{
		Tau:        5 * time.Millisecond,
		MatchDepth: 2,
		OnDeadlock: func(info dimmunix.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	defer rt.Stop()

	const nAccounts, nTellers, nTransfers = 8, 6, 300
	bk := &bank{rt: rt}
	var total int64
	for i := 0; i < nAccounts; i++ {
		bk.accounts = append(bk.accounts, &account{mu: rt.NewMutex(), balance: 1000})
		total += 1000
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nTellers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); bk.teller(i, nTransfers) }(i)
	}
	wg.Wait()

	var sum int64
	for _, a := range bk.accounts {
		sum += a.balance
	}
	stats := rt.Stats()
	fmt.Printf("transfers completed: %d (retried after recovery: %d)\n", bk.done.Load(), bk.retries.Load())
	fmt.Printf("deadlock patterns learned: %d, yields: %d, elapsed: %s\n",
		rt.History().Len(), stats.Yields, time.Since(start).Round(time.Millisecond))
	if sum != total {
		fmt.Printf("MONEY LEAKED: %d != %d\n", sum, total)
	} else {
		fmt.Printf("balance conserved: %d\n", sum)
	}
}
