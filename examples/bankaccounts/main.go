// Bank accounts: unordered two-lock transfers — the classic deadlock that
// the paper's §4 pseudocode distills. A pool of tellers moves money
// between accounts, locking source before destination (no global order).
// The account lock is a zero-value dimmunix.Mutex embedded by value,
// exactly as sync.Mutex would be — drop-in immunity, no Runtime plumbing.
// Dimmunix lets the system contract each deadlock pattern once, then
// keeps it running; the abort-recovery policy retries failed transfers
// after unwinding, so no transfer is lost (totals are checked at the
// end).
//
//	go run ./examples/bankaccounts
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix"
)

type account struct {
	mu      dimmunix.Mutex // zero value, like sync.Mutex
	balance int64
}

type bank struct {
	accounts []*account
	retries  atomic.Uint64
	done     atomic.Uint64
}

// transfer locks src then dst — deliberately unordered.
//
//go:noinline
func (bk *bank) transfer(src, dst *account, amount int64) error {
	if err := src.mu.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(200 * time.Microsecond) // audit work while holding src
	//lint:ignore lockorder deliberate inversion: transfer/audit reproduce the classic account deadlock
	if err := dst.mu.LockCtx(context.Background()); err != nil {
		src.mu.Unlock()
		return err
	}
	src.balance -= amount
	dst.balance += amount
	dst.mu.Unlock()
	src.mu.Unlock()
	return nil
}

func (bk *bank) teller(id int, transfers int) {
	rng := rand.New(rand.NewSource(int64(id)))
	for i := 0; i < transfers; i++ {
		src := bk.accounts[rng.Intn(len(bk.accounts))]
		dst := bk.accounts[rng.Intn(len(bk.accounts))]
		if src == dst {
			continue
		}
		for {
			err := bk.transfer(src, dst, 1)
			if err == nil {
				bk.done.Add(1)
				break
			}
			if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
				// The restart: the transaction unwound cleanly; retry.
				bk.retries.Add(1)
				continue
			}
			fmt.Println("teller error:", err)
			return
		}
	}
}

func main() {
	if err := dimmunix.Init(
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithAbortRecovery(),
	); err != nil {
		panic(err)
	}
	defer dimmunix.Shutdown()

	const nAccounts, nTellers, nTransfers = 8, 6, 300
	bk := &bank{}
	var total int64
	for i := 0; i < nAccounts; i++ {
		bk.accounts = append(bk.accounts, &account{balance: 1000})
		total += 1000
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nTellers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); bk.teller(i, nTransfers) }(i)
	}
	wg.Wait()

	var sum int64
	for _, a := range bk.accounts {
		sum += a.balance
	}
	rt := dimmunix.Default()
	stats := rt.Stats()
	fmt.Printf("transfers completed: %d (retried after recovery: %d)\n", bk.done.Load(), bk.retries.Load())
	fmt.Printf("deadlock patterns learned: %d, yields: %d, elapsed: %s\n",
		rt.History().Len(), stats.Yields, time.Since(start).Round(time.Millisecond))
	if sum != total {
		fmt.Printf("MONEY LEAKED: %d != %d\n", sum, total)
	} else {
		fmt.Printf("balance conserved: %d\n", sum)
	}
}
