// Message broker: the ActiveMQ-style dispatch/subscribe inversion from
// Table 1 (bugs 336/575) under sustained load, driven by a condition
// variable — and observed through the typed event API.
//
// Producers enqueue messages under the session lock and signal a
// dimmunix.Cond; the dispatcher waits on the cond (its release and
// re-acquisition of the session lock flow through the §5.4 avoidance
// protocol, the paper's §6 condvar instrumentation), then delivers by
// locking each consumer while still holding the session. Clients
// (un)subscribe by locking the consumer then the session. The first
// collision deadlocks and is archived; after that the dispatcher keeps
// meeting — and avoiding — the pattern on every conflicting
// interleaving, exactly the "many yields per trial" behaviour the paper
// reports for ActiveMQ. A WithObserver callback narrates the runtime's
// decisions live, and the final stats split the traffic by tier.
//
//	go run ./examples/messagebroker
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix"
)

type broker struct {
	session  dimmunix.Mutex
	consumer dimmunix.Mutex

	// queue is guarded by session; notEmpty signals arrivals.
	queue    []int
	notEmpty *dimmunix.Cond

	delivered atomic.Uint64
	resubs    atomic.Uint64
}

//go:noinline
func (b *broker) publish(msg int) error {
	if err := b.session.LockCtx(context.Background()); err != nil {
		return err
	}
	b.queue = append(b.queue, msg)
	b.notEmpty.Signal()
	b.session.Unlock()
	return nil
}

//go:noinline
func (b *broker) dispatch() error {
	if err := b.session.LockCtx(context.Background()); err != nil {
		return err
	}
	for len(b.queue) == 0 {
		// The cond wait releases the session lock and re-acquires it
		// through the full avoidance protocol; recovery surfaces here
		// as an error (mutex not held), like LockCtx.
		if err := b.notEmpty.WaitCtx(context.Background()); err != nil {
			return err
		}
	}
	time.Sleep(500 * time.Microsecond) // select messages for delivery
	if err := b.consumer.LockCtx(context.Background()); err != nil {
		// The message stays queued: a recovered dispatch retries it.
		b.session.Unlock()
		return err
	}
	b.queue = b.queue[1:]
	b.delivered.Add(1)
	b.consumer.Unlock()
	b.session.Unlock()
	return nil
}

//go:noinline
func (b *broker) resubscribe() error {
	if err := b.consumer.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(500 * time.Microsecond) // rebuild the listener
	//lint:ignore lockorder deliberate inversion: reproduces ActiveMQ-style consumer/session deadlock
	if err := b.session.LockCtx(context.Background()); err != nil {
		b.consumer.Unlock()
		return err
	}
	b.resubs.Add(1)
	b.session.Unlock()
	b.consumer.Unlock()
	return nil
}

func main() {
	var narrated atomic.Uint64
	if err := dimmunix.Init(
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithAbortRecovery(),
		dimmunix.WithObserver(func(ev dimmunix.Event) {
			// Narrate the interesting moments (bounded: yields arrive in
			// the thousands under load, so only the first few print).
			switch e := ev.(type) {
			case dimmunix.DeadlockDetected:
				fmt.Printf("[event] deadlock detected: sig=%s new=%v threads=%v\n", e.SigID, e.New, e.ThreadIDs)
			case dimmunix.SignatureArchived:
				fmt.Printf("[event] signature archived: %s (%s, %d stacks)\n", e.SigID, e.Kind, e.Stacks)
			case dimmunix.RecoveryAborted:
				fmt.Printf("[event] recovery unwound threads %v\n", e.ThreadIDs)
			case dimmunix.AvoidanceYield:
				if narrated.Add(1) <= 3 {
					fmt.Printf("[event] yield: thread %d steered away from sig %s\n", e.TID, e.SigID)
				}
			}
		}),
	); err != nil {
		panic(err)
	}
	defer dimmunix.Shutdown()

	b := &broker{}
	b.notEmpty = dimmunix.NewCond(&b.session)

	const rounds = 400
	var wg sync.WaitGroup
	wg.Add(3)
	start := time.Now()
	go func() { // producer feeds the dispatcher's cond-guarded queue
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				err := b.publish(i)
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue
				}
				fmt.Println("producer:", err)
				return
			}
		}
	}()
	go func() { // dispatcher: cond wait, then session→consumer delivery
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				err := b.dispatch()
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue // unwound; retry the dispatch
				}
				fmt.Println("dispatcher:", err)
				return
			}
		}
	}()
	go func() { // client: consumer→session inversion
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				err := b.resubscribe()
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue
				}
				fmt.Println("subscriber:", err)
				return
			}
		}
	}()
	wg.Wait()

	rt := dimmunix.Default()
	stats := rt.Stats()
	fmt.Printf("delivered %d messages, %d resubscriptions in %s\n",
		b.delivered.Load(), b.resubs.Load(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("patterns learned: %d, yields (avoided collisions): %d, recoveries: %d\n",
		stats.HistorySignatures, stats.Yields, stats.Recoveries)
	fmt.Printf("acquisitions: %d fast-tier + %d guarded = %d total; events dropped: %d\n",
		stats.FastAcquired, stats.GuardedAcquired, stats.Acquired, stats.EventsDropped)
}
