// Message broker: the ActiveMQ-style dispatch/subscribe inversion from
// Table 1 (bugs 336/575) under sustained load.
//
// A dispatcher loop locks the session monitor then each consumer; clients
// (un)subscribe by locking the consumer then the session. Both locks are
// zero-value dimmunix.Mutex fields — drop-in, no Runtime plumbing. The
// first collision deadlocks and is archived; after that the dispatcher
// keeps meeting — and avoiding — the pattern on every conflicting
// interleaving, exactly the "many yields per trial" behaviour the paper
// reports for ActiveMQ.
//
//	go run ./examples/messagebroker
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix"
)

type broker struct {
	session   dimmunix.Mutex
	consumer  dimmunix.Mutex
	delivered atomic.Uint64
	resubs    atomic.Uint64
}

//go:noinline
func (b *broker) dispatch() error {
	if err := b.session.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(500 * time.Microsecond) // select messages for delivery
	if err := b.consumer.LockCtx(context.Background()); err != nil {
		b.session.Unlock()
		return err
	}
	b.delivered.Add(1)
	b.consumer.Unlock()
	b.session.Unlock()
	return nil
}

//go:noinline
func (b *broker) resubscribe() error {
	if err := b.consumer.LockCtx(context.Background()); err != nil {
		return err
	}
	time.Sleep(500 * time.Microsecond) // rebuild the listener
	if err := b.session.LockCtx(context.Background()); err != nil {
		b.consumer.Unlock()
		return err
	}
	b.resubs.Add(1)
	b.session.Unlock()
	b.consumer.Unlock()
	return nil
}

func main() {
	if err := dimmunix.Init(
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithAbortRecovery(),
		dimmunix.WithRecovery(func(dimmunix.DeadlockInfo) {
			fmt.Println("broker deadlocked (dispatch vs resubscribe); recovering + immunizing")
		}),
	); err != nil {
		panic(err)
	}
	defer dimmunix.Shutdown()

	b := &broker{}
	const rounds = 400
	var wg sync.WaitGroup
	wg.Add(2)
	start := time.Now()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				err := b.dispatch()
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue // unwound; retry the dispatch
				}
				fmt.Println("dispatcher:", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				err := b.resubscribe()
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue
				}
				fmt.Println("subscriber:", err)
				return
			}
		}
	}()
	wg.Wait()

	rt := dimmunix.Default()
	stats := rt.Stats()
	fmt.Printf("delivered %d messages, %d resubscriptions in %s\n",
		b.delivered.Load(), b.resubs.Load(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("patterns learned: %d, yields (avoided collisions): %d\n",
		rt.History().Len(), stats.Yields)
}
