// Message broker: the ActiveMQ-style dispatch/subscribe inversion from
// Table 1 (bugs 336/575) under sustained load.
//
// A dispatcher loop locks the session monitor then each consumer; clients
// (un)subscribe by locking the consumer then the session. The first
// collision deadlocks and is archived; after that the dispatcher keeps
// meeting — and avoiding — the pattern on every conflicting interleaving,
// exactly the "many yields per trial" behaviour the paper reports for
// ActiveMQ.
//
//	go run ./examples/messagebroker
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix"
)

type broker struct {
	rt        *dimmunix.Runtime
	session   *dimmunix.Mutex
	consumer  *dimmunix.Mutex
	delivered atomic.Uint64
	resubs    atomic.Uint64
}

//go:noinline
func (b *broker) dispatch(t *dimmunix.Thread) error {
	if err := b.session.LockT(t); err != nil {
		return err
	}
	time.Sleep(500 * time.Microsecond) // select messages for delivery
	if err := b.consumer.LockT(t); err != nil {
		_ = b.session.UnlockT(t)
		return err
	}
	b.delivered.Add(1)
	_ = b.consumer.UnlockT(t)
	_ = b.session.UnlockT(t)
	return nil
}

//go:noinline
func (b *broker) resubscribe(t *dimmunix.Thread) error {
	if err := b.consumer.LockT(t); err != nil {
		return err
	}
	time.Sleep(500 * time.Microsecond) // rebuild the listener
	if err := b.session.LockT(t); err != nil {
		_ = b.consumer.UnlockT(t)
		return err
	}
	b.resubs.Add(1)
	_ = b.session.UnlockT(t)
	_ = b.consumer.UnlockT(t)
	return nil
}

func main() {
	var rt *dimmunix.Runtime
	rt = dimmunix.MustNew(dimmunix.Config{
		Tau:        5 * time.Millisecond,
		MatchDepth: 2,
		OnDeadlock: func(info dimmunix.DeadlockInfo) {
			fmt.Println("broker deadlocked (dispatch vs resubscribe); recovering + immunizing")
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	defer rt.Stop()

	b := &broker{rt: rt, session: rt.NewMutex(), consumer: rt.NewMutex()}
	const rounds = 400
	var wg sync.WaitGroup
	wg.Add(2)
	start := time.Now()
	go func() {
		defer wg.Done()
		t := rt.RegisterThread("dispatcher")
		defer t.Close()
		for i := 0; i < rounds; i++ {
			for {
				err := b.dispatch(t)
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue // unwound; retry the dispatch
				}
				fmt.Println("dispatcher:", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		t := rt.RegisterThread("subscriber")
		defer t.Close()
		for i := 0; i < rounds; i++ {
			for {
				err := b.resubscribe(t)
				if err == nil {
					break
				}
				if errors.Is(err, dimmunix.ErrDeadlockRecovered) {
					continue
				}
				fmt.Println("subscriber:", err)
				return
			}
		}
	}()
	wg.Wait()

	stats := rt.Stats()
	fmt.Printf("delivered %d messages, %d resubscriptions in %s\n",
		b.delivered.Load(), b.resubs.Load(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("patterns learned: %d, yields (avoided collisions): %d\n",
		rt.History().Len(), stats.Yields)
}
