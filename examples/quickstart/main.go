// Quickstart: the smallest useful Dimmunix program.
//
// Two goroutines take two locks in opposite orders — the §4 example from
// the paper. The first encounter deadlocks; the monitor detects it,
// archives its signature, and the recovery hook unwinds the victims. Every
// later encounter (in this process or, thanks to the history file, in any
// later run) is steered around the pattern.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"dimmunix"
)

//go:noinline
func update(t *dimmunix.Thread, first, second *dimmunix.Mutex) error {
	if err := first.LockT(t); err != nil {
		return err
	}
	defer first.UnlockT(t)
	time.Sleep(30 * time.Millisecond) // the timing window that exposes the bug
	if err := second.LockT(t); err != nil {
		return err
	}
	defer second.UnlockT(t)
	return nil
}

func attempt(rt *dimmunix.Runtime, a, b *dimmunix.Mutex) (error, error) {
	t1 := rt.RegisterThread("T1")
	t2 := rt.RegisterThread("T2")
	defer t1.Close()
	defer t2.Close()
	done1, done2 := make(chan error, 1), make(chan error, 1)
	go func() { done1 <- update(t1, a, b) }() // update(A, B)
	go func() { done2 <- update(t2, b, a) }() // update(B, A)
	return <-done1, <-done2
}

func main() {
	var rt *dimmunix.Runtime
	rt = dimmunix.MustNew(dimmunix.Config{
		HistoryPath: "quickstart-history.json",
		Tau:         5 * time.Millisecond,
		MatchDepth:  2,
		OnDeadlock: func(info dimmunix.DeadlockInfo) {
			fmt.Printf("deadlock detected; signature %s archived; recovering\n", info.Sig.ID)
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	for attemptNo := 1; attemptNo <= 3; attemptNo++ {
		err1, err2 := attempt(rt, a, b)
		switch {
		case err1 == nil && err2 == nil:
			fmt.Printf("attempt %d: completed (yields so far: %d)\n", attemptNo, rt.Stats().Yields)
		default:
			fmt.Printf("attempt %d: unwound (%v / %v) — now immune\n", attemptNo, err1, err2)
		}
	}
	fmt.Printf("history: %d signature(s) persisted to quickstart-history.json\n", rt.History().Len())
}
