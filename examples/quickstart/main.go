// Quickstart: the smallest useful Dimmunix program.
//
// Two goroutines take two locks in opposite orders — the §4 example from
// the paper. The mutexes are plain zero values, exactly where sync.Mutex
// would sit; no Runtime is plumbed anywhere. The first encounter
// deadlocks; the monitor detects it, archives its signature, and the
// abort-recovery policy unwinds the victims. Every later encounter (in
// this process or, thanks to the history file, in any later run) is
// steered around the pattern.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	"dimmunix"
)

// The locks sit exactly where sync.Mutex would: zero values, no setup.
var a, b dimmunix.Mutex

//go:noinline
func update(first, second *dimmunix.Mutex) error {
	// LockCtx is the recovery-aware acquisition: when the monitor unwinds
	// a deadlock victim, it returns ErrDeadlockRecovered instead of
	// panicking like the sync-shaped Lock.
	if err := first.LockCtx(context.Background()); err != nil {
		return err
	}
	defer first.Unlock()
	time.Sleep(30 * time.Millisecond) // the timing window that exposes the bug
	//lint:ignore lockorder deliberate inversion: the quickstart walks through a real deadlock
	if err := second.LockCtx(context.Background()); err != nil {
		return err
	}
	defer second.Unlock()
	return nil
}

func attempt() (error, error) {
	done1, done2 := make(chan error, 1), make(chan error, 1)
	go func() { done1 <- update(&a, &b) }() // update(A, B)
	go func() { done2 <- update(&b, &a) }() // update(B, A)
	return <-done1, <-done2
}

func main() {
	if err := dimmunix.Init(
		dimmunix.WithHistory("quickstart-history.json"),
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithAbortRecovery(),
		dimmunix.WithRecovery(func(info dimmunix.DeadlockInfo) {
			fmt.Printf("deadlock detected; signature %s archived; recovering\n", info.Sig.ID)
		}),
	); err != nil {
		panic(err)
	}
	defer dimmunix.Shutdown()

	for attemptNo := 1; attemptNo <= 3; attemptNo++ {
		err1, err2 := attempt()
		switch {
		case err1 == nil && err2 == nil:
			fmt.Printf("attempt %d: completed (yields so far: %d)\n", attemptNo, dimmunix.Default().Stats().Yields)
		default:
			fmt.Printf("attempt %d: unwound (%v / %v) — now immune\n", attemptNo, err1, err2)
		}
	}
	fmt.Printf("history: %d signature(s) persisted to quickstart-history.json\n",
		dimmunix.Default().History().Len())
}
