// Collections: "invitations to deadlock" (§7.1.2, Table 2).
//
// Synchronized containers let callers nest monitors without knowing it:
// v1.AddAll(v2) concurrent with v2.AddAll(v1) deadlocks inside the
// library even though neither caller has a logic bug. This example builds
// two synchronized vectors on Dimmunix mutexes, walks into the deadlock
// once, and then keeps hammering AddAll from both sides — immunized.
//
//	go run ./examples/collections
package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dimmunix"
)

// syncVector is a miniature java.util.Vector: every method locks the
// receiver; AddAll additionally locks the argument.
type syncVector struct {
	mu    *dimmunix.Mutex
	items []int
}

func newSyncVector(rt *dimmunix.Runtime) *syncVector {
	return &syncVector{mu: rt.NewMutexKind(dimmunix.Recursive)}
}

func (v *syncVector) Add(t *dimmunix.Thread, x int) error {
	if err := v.mu.LockT(t); err != nil {
		return err
	}
	defer v.mu.UnlockT(t)
	v.items = append(v.items, x)
	return nil
}

func (v *syncVector) snapshot(t *dimmunix.Thread) ([]int, error) {
	if err := v.mu.LockT(t); err != nil {
		return nil, err
	}
	defer v.mu.UnlockT(t)
	return append([]int(nil), v.items...), nil
}

//go:noinline
func (v *syncVector) AddAll(t *dimmunix.Thread, other *syncVector) error {
	if err := v.mu.LockT(t); err != nil {
		return err
	}
	defer v.mu.UnlockT(t)
	time.Sleep(10 * time.Millisecond) // the interleaving window
	items, err := other.snapshot(t)
	if err != nil {
		return err
	}
	v.items = append(v.items, items...)
	return nil
}

func main() {
	var rt *dimmunix.Runtime
	rt = dimmunix.MustNew(dimmunix.Config{
		Tau:        5 * time.Millisecond,
		MatchDepth: 1, // library-level pattern: match the AddAll lock site
		OnDeadlock: func(info dimmunix.DeadlockInfo) {
			fmt.Println("deadlocked inside the container library; signature archived")
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	defer rt.Stop()

	v1, v2 := newSyncVector(rt), newSyncVector(rt)
	seed := rt.RegisterThread("seed")
	_ = v1.Add(seed, 1)
	_ = v2.Add(seed, 2)
	seed.Close()

	for round := 1; round <= 5; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() {
			defer wg.Done()
			t := rt.RegisterThread("w1")
			defer t.Close()
			errs[0] = v1.AddAll(t, v2)
		}()
		go func() {
			defer wg.Done()
			t := rt.RegisterThread("w2")
			defer t.Close()
			errs[1] = v2.AddAll(t, v1)
		}()
		wg.Wait()
		switch {
		case errs[0] == nil && errs[1] == nil:
			fmt.Printf("round %d: both AddAll calls completed (yields: %d)\n", round, rt.Stats().Yields)
		case errors.Is(errs[0], dimmunix.ErrDeadlockRecovered) || errors.Is(errs[1], dimmunix.ErrDeadlockRecovered):
			fmt.Printf("round %d: deadlock contracted and recovered — immune from now on\n", round)
		default:
			fmt.Printf("round %d: %v / %v\n", round, errs[0], errs[1])
		}
	}
}
