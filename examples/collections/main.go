// Collections: "invitations to deadlock" (§7.1.2, Table 2).
//
// Synchronized containers let callers nest monitors without knowing it:
// v1.AddAll(v2) concurrent with v2.AddAll(v1) deadlocks inside the
// library even though neither caller has a logic bug. This example builds
// two synchronized vectors on zero-value dimmunix.RWMutex values —
// methods write-lock the receiver, snapshot read-locks the argument, so
// the deadlock runs through a reader-held edge, the scenario class the
// original paper never covered. The program walks into the deadlock
// once, and then keeps hammering AddAll from both sides — immunized.
//
//	go run ./examples/collections
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dimmunix"
)

// syncVector is a miniature java.util.Vector: mutating methods
// write-lock the receiver; AddAll additionally read-locks the argument.
type syncVector struct {
	mu    dimmunix.RWMutex // zero value, like sync.RWMutex
	items []int
}

func (v *syncVector) Add(x int) error {
	if err := v.mu.LockCtx(context.Background()); err != nil {
		return err
	}
	defer v.mu.Unlock()
	v.items = append(v.items, x)
	return nil
}

func (v *syncVector) snapshot() ([]int, error) {
	if err := v.mu.RLockCtx(context.Background()); err != nil {
		return nil, err
	}
	defer v.mu.RUnlock()
	return append([]int(nil), v.items...), nil
}

//go:noinline
func (v *syncVector) AddAll(other *syncVector) error {
	if err := v.mu.LockCtx(context.Background()); err != nil {
		return err
	}
	defer v.mu.Unlock()
	time.Sleep(10 * time.Millisecond) // the interleaving window
	items, err := other.snapshot()
	if err != nil {
		return err
	}
	v.items = append(v.items, items...)
	return nil
}

func main() {
	if err := dimmunix.Init(
		dimmunix.WithTau(5*time.Millisecond),
		dimmunix.WithMatchDepth(1), // library-level pattern: match the AddAll lock site
		dimmunix.WithAbortRecovery(),
		dimmunix.WithRecovery(func(dimmunix.DeadlockInfo) {
			fmt.Println("deadlocked inside the container library; signature archived")
		}),
	); err != nil {
		panic(err)
	}
	defer dimmunix.Shutdown()

	v1, v2 := &syncVector{}, &syncVector{}
	_ = v1.Add(1)
	_ = v2.Add(2)

	for round := 1; round <= 5; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() {
			defer wg.Done()
			errs[0] = v1.AddAll(v2)
		}()
		go func() {
			defer wg.Done()
			errs[1] = v2.AddAll(v1)
		}()
		wg.Wait()
		switch {
		case errs[0] == nil && errs[1] == nil:
			fmt.Printf("round %d: both AddAll calls completed (yields: %d)\n",
				round, dimmunix.Default().Stats().Yields)
		case errors.Is(errs[0], dimmunix.ErrDeadlockRecovered) || errors.Is(errs[1], dimmunix.ErrDeadlockRecovered):
			fmt.Printf("round %d: deadlock contracted and recovered — immune from now on\n", round)
		default:
			fmt.Printf("round %d: %v / %v\n", round, errs[0], errs[1])
		}
	}
}
