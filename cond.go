package dimmunix

import (
	"context"
	"errors"
	"sync/atomic"

	"dimmunix/internal/core"
)

// Cond is a drop-in, deadlock-immune replacement for sync.Cond, bound
// to a dimmunix.Mutex:
//
//	var mu dimmunix.Mutex
//	cond := dimmunix.NewCond(&mu)
//
//	mu.Lock()
//	for !ready {
//		cond.Wait()
//	}
//	...
//	mu.Unlock()
//
// Semantics are Mesa-style, like sync.Cond: Wait may wake spuriously,
// so callers loop on their predicate. The §6-relevant difference from
// sync.Cond is that Wait's release and re-acquisition of the associated
// mutex flow through the full §5.4 avoidance protocol — a deadlock
// formed through a cond-wait re-acquisition is detected, archived, and
// avoided on later runs exactly like one formed through plain Lock.
//
// Like Mutex, Cond is generation-aware: after a Shutdown→Init of the
// default runtime, the next Wait rebinds to the fresh runtime (the
// superseded binding's parked waiters are woken spuriously; they
// re-acquire through the rebound mutex, re-check their predicate, and
// re-register — correct under Mesa semantics).
//
// A Cond must not be copied after first use.
type Cond struct {
	// L is the associated drop-in mutex; it must be held when calling
	// Wait or WaitCtx.
	L *Mutex

	b atomic.Pointer[condBinding]
}

// condBinding pairs a core condition variable with the core mutex
// instance it was built over; a rebind of the mutex (Shutdown→Init)
// makes the pairing stale and the next Wait re-creates it.
type condBinding struct {
	cm *core.Mutex
	c  *core.Cond
}

// NewCond returns a condition variable bound to l, like sync.NewCond.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// core returns the condition variable over the mutex's current binding,
// (re)creating it when the mutex was bound or rebound since.
func (c *Cond) core() *core.Cond {
	cm := c.L.Core() // binds / rebinds the mutex itself first
	for {
		b := c.b.Load()
		if b != nil && b.cm == cm {
			return b.c
		}
		nb := &condBinding{cm: cm, c: core.NewCond(cm)}
		if c.b.CompareAndSwap(b, nb) {
			if b != nil {
				// Wake waiters parked on the superseded binding: they
				// surface as spurious wakeups, re-acquire through the
				// rebound mutex, and re-register on the fresh binding.
				b.c.Broadcast()
			}
			return nb.c
		}
	}
}

// Wait atomically releases c.L, suspends the calling goroutine until a
// Signal/Broadcast (or a spurious wakeup), and re-acquires c.L through
// the avoidance protocol before returning. Unlike sync.Cond.Wait it can
// be unwound by deadlock recovery: if a recovery hook aborts this
// thread's re-acquisition, Wait panics with ErrDeadlockRecovered (the
// in-process restart), exactly like Mutex.Lock. Use WaitCtx to observe
// recovery or cancellation as an error instead.
func (c *Cond) Wait() {
	err := c.core().Wait()
	switch {
	case err == nil:
	case errors.Is(err, core.ErrMutexRetired):
		// The binding was superseded mid-wait (Shutdown→Init). The
		// re-acquisition bounced; take the mutex through the facade
		// (which rebinds) and surface a spurious wakeup.
		c.L.Lock()
	default:
		panic(err)
	}
}

// WaitCtx is Wait with cancellation and recovery as errors. When ctx
// fires first, the mutex is still re-acquired (the caller's unlock
// discipline holds) and ctx.Err() is returned. When deadlock recovery
// unwinds the re-acquisition, ErrDeadlockRecovered is returned and the
// mutex is NOT held — the caller abandons its critical section, the
// in-process analog of the paper's restart (§3).
func (c *Cond) WaitCtx(ctx context.Context) error {
	err := c.core().WaitCtx(ctx)
	if errors.Is(err, core.ErrMutexRetired) {
		// Superseded mid-wait; reacquire through the facade and report
		// a spurious wakeup (nil), unless ctx fired too.
		if lerr := c.L.LockCtx(ctx); lerr != nil {
			return lerr
		}
		return nil
	}
	return err
}

// Signal wakes one goroutine waiting on c, if any. As with sync.Cond,
// the caller may but need not hold c.L.
func (c *Cond) Signal() {
	if b := c.b.Load(); b != nil {
		b.c.Signal()
	}
}

// Broadcast wakes all goroutines waiting on c.
func (c *Cond) Broadcast() {
	if b := c.b.Load(); b != nil {
		b.c.Broadcast()
	}
}
